"""Deterministic differential fuzzer for the simulator and the annealer.

``python -m repro.verify.fuzz --cases 200 --seed 0`` draws scenario
configs from :class:`numpy.random.SeedSequence` spawn keys and runs, per
case:

* **DES cases** — the optimized :class:`VoDClusterSimulator` against the
  clarity-first :class:`ReferenceClusterSimulator` (bit-identical
  ``same_outcome`` required), the audited loop (bit-identical *and* zero
  invariant violations required), and a repeat run (purity required);
* **SA cases** — the incremental (delta-cost) annealing context against
  full recomputation: per-move delta exactness, rng parity, bitwise
  commit/rollback state agreement, plus engine-level invariants
  (``best_cost`` is a true recomputation, feasibility of the best state).

The run is bit-reproducible: the same ``--cases/--seed`` produce the same
case stream and the same outcome digest (a SHA-256 over every case's
deterministic result summary).  Failing cases are greedily shrunk
(:mod:`repro.verify.shrink`) and serialized as JSON repro files that the
test suite replays from ``tests/corpus/``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .audit import run_audited
from .auditors import failure_auditors
from .scenarios import (
    FuzzCase,
    build_des,
    build_sa,
    build_serving,
    draw_case,
    draw_serving_case,
)
from .shrink import shrink_case

__all__ = ["CaseOutcome", "FuzzReport", "run_case", "replay", "fuzz", "main"]

#: Delta-vs-recompute tolerance (matches tests/test_annealing_incremental).
_DELTA_ABS = 1e-9


@dataclass(frozen=True)
class CaseOutcome:
    """Result of one fuzz case: failure messages + deterministic summary."""

    name: str
    failures: tuple[str, ...]
    summary: dict = field(hash=False)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz campaign."""

    cases: int
    seed: int
    digest: str
    failures: tuple[CaseOutcome, ...]
    corpus_paths: tuple[str, ...]
    elapsed_sec: float

    @property
    def ok(self) -> bool:
        return not self.failures


def _run_des(params: dict) -> tuple[list[str], dict]:
    optimized, reference, trace, run_kwargs = build_des(params)
    failures: list[str] = []

    result = optimized.run(trace, **run_kwargs)
    ref_result = reference.run(trace, **run_kwargs)
    if not result.same_outcome(ref_result):
        failures.append(
            "des-equivalence: optimized diverged from reference "
            f"(rejected {result.num_rejected} vs {ref_result.num_rejected}, "
            f"events {result.num_events} vs {ref_result.num_events})"
        )

    # Fourth lockstep engine: the vectorized event-batch core must match
    # bit for bit on every case, fast path engaged or delegated.
    from ..cluster_sim import VectorClusterSimulator

    vector = VectorClusterSimulator(
        optimized._cluster,
        optimized._videos,
        optimized._layout,
        dispatcher_factory=optimized._dispatcher_factory,
        backbone_mbps=optimized._backbone_mbps,
        stream_limits=optimized._stream_limits,
        redirection_pods=optimized._redirection_pods,
    )
    vec_result = vector.run(trace, **run_kwargs)
    if not result.same_outcome(vec_result):
        failures.append(
            "des-vector-equivalence: vector engine diverged from optimized "
            f"(rejected {result.num_rejected} vs {vec_result.num_rejected}, "
            f"events {result.num_events} vs {vec_result.num_events})"
        )

    audited, report = run_audited(
        optimized, trace, auditors=failure_auditors(), **run_kwargs
    )
    if not result.same_outcome(audited):
        failures.append(
            "des-audit-equivalence: audited loop diverged from plain run "
            f"(rejected {result.num_rejected} vs {audited.num_rejected})"
        )
    for violation in report.violations:
        failures.append(f"des-audit: {violation}")

    again = optimized.run(trace, **run_kwargs)
    if not result.same_outcome(again):
        failures.append("des-determinism: repeat run changed the outcome")

    summary = {
        "num_requests": result.num_requests,
        "num_rejected": result.num_rejected,
        "num_events": result.num_events,
        "num_truncated": result.num_truncated,
        "num_redirected": result.num_redirected,
        "streams_dropped": result.streams_dropped,
        "num_failures": result.num_failures,
        "num_recoveries": result.num_recoveries,
        "num_retries": result.num_retries,
        "num_failovers": result.num_failovers,
        "num_lost_to_failure": result.num_lost_to_failure,
        "num_rereplicated": result.num_rereplicated,
        "mttr_min": repr(float(result.mean_time_to_recovery_min)),
        "downtime_min": [repr(float(x)) for x in result.server_downtime_min],
        "avg_load": [repr(float(x)) for x in result.server_time_avg_load_mbps],
        "peak_load": [repr(float(x)) for x in result.server_peak_load_mbps],
    }
    return failures, summary


def _run_sa(params: dict) -> tuple[list[str], dict]:
    problem, annealer = build_sa(params)
    failures: list[str] = []

    state = problem.initial_state(
        np.random.default_rng(int(params["init_seed"]))
    )
    context = problem.make_incremental(state)
    full_state = state.copy()
    walk_seed = int(params["walk_seed"])
    checked = 0
    for i in range(int(params["crosscheck_moves"])):
        seed = walk_seed + i
        before = problem.cost(full_state)
        neighbor = problem.propose(full_state, np.random.default_rng(seed))
        delta = context.propose(np.random.default_rng(seed))
        if neighbor is None:
            if delta is not None:
                failures.append(
                    f"sa-parity: move {i} fell through on the full path "
                    "but not the incremental one"
                )
                context.rollback()
            continue
        if delta is None:
            failures.append(
                f"sa-parity: move {i} fell through on the incremental "
                "path but not the full one"
            )
            continue
        expected = problem.cost(neighbor) - before
        if abs(delta - expected) > _DELTA_ABS + 1e-9 * abs(before):
            failures.append(
                f"sa-delta: move {i} delta {delta!r} != recomputed "
                f"{expected!r}"
            )
        checked += 1
        if i % 2 == 0:
            full_state = neighbor
            context.commit()
        else:
            context.rollback()
        if not np.array_equal(context.export_state(), full_state):
            failures.append(
                f"sa-state: incremental state diverged bitwise after "
                f"{'commit' if i % 2 == 0 else 'rollback'} at move {i}"
            )
            break  # everything downstream would re-report the same drift

    engine_seed = int(params["engine_seed"])
    result = annealer.run(problem, np.random.default_rng(engine_seed))
    recomputed = problem.cost(result.best_state)
    if abs(result.best_cost - recomputed) > 1e-9 * max(1.0, abs(recomputed)):
        failures.append(
            f"sa-engine: best_cost {result.best_cost!r} is not a true "
            f"recomputation ({recomputed!r})"
        )
    steps_per_level = int(params["steps_per_level"])
    if result.steps != steps_per_level * result.levels:
        failures.append(
            f"sa-engine: steps {result.steps} != "
            f"{steps_per_level} * {result.levels} levels"
        )
    if problem._violating_servers(result.best_state).size:
        failures.append("sa-engine: best state violates server bandwidth")
    summary = {
        "checked_moves": checked,
        "best_cost": repr(float(result.best_cost)),
        "steps": result.steps,
        "accepted": result.accepted,
    }
    if params.get("compare_engines"):
        full = annealer.run(
            problem,
            np.random.default_rng(engine_seed),
            use_incremental=False,
        )
        if full.steps != result.steps:
            failures.append(
                f"sa-engine: full path took {full.steps} steps, "
                f"incremental {result.steps}"
            )
        # Float-noise acceptance flips can diverge trajectories; only a
        # regime-level disagreement is a finding.
        scale = max(abs(full.best_cost), abs(result.best_cost), 1e-12)
        if abs(full.best_cost - result.best_cost) > 0.05 * scale:
            failures.append(
                f"sa-engine: incremental best {result.best_cost!r} far "
                f"from full-recompute best {full.best_cost!r}"
            )
        summary["full_best_cost"] = repr(float(full.best_cost))
    return failures, summary


def _run_serving(params: dict) -> tuple[list[str], dict]:
    from ..serving import ServingControlPlane, chain_batch_epochs

    config = build_serving(params)
    failures: list[str] = []

    result = ServingControlPlane(config).run()
    again = ServingControlPlane(config).run()
    if result.digest() != again.digest():
        failures.append(
            "serving-determinism: repeat run changed the epoch digest "
            f"({result.digest()[:12]} vs {again.digest()[:12]})"
        )

    for s in result.snapshots:
        # Request conservation: every simulated request is admitted or
        # rejected, and every generated request is simulated or truncated
        # by the epoch horizon.
        if s.num_admitted + s.num_rejected != s.num_requests:
            failures.append(
                f"serving-conservation: epoch {s.epoch} admitted "
                f"{s.num_admitted} + rejected {s.num_rejected} != "
                f"requests {s.num_requests}"
            )
        if s.num_requests + s.num_truncated != s.num_generated:
            failures.append(
                f"serving-conservation: epoch {s.epoch} requests "
                f"{s.num_requests} + truncated {s.num_truncated} != "
                f"generated {s.num_generated}"
            )
        if (
            config.move_budget is not None
            and s.replicas_copied > config.move_budget
        ):
            failures.append(
                f"serving-budget: epoch {s.epoch} copied "
                f"{s.replicas_copied} > move budget {config.move_budget}"
            )
        if s.cold and s.migration_executed:
            failures.append(
                f"serving-cold: epoch {s.epoch} replanned with zero "
                "observed requests"
            )

    action_epochs = [
        s.epoch for s in result.snapshots if s.elasticity_action != 0
    ]
    for prev, cur in zip(action_epochs, action_epochs[1:]):
        if cur - prev <= config.cooldown_epochs:
            failures.append(
                f"serving-hysteresis: elastic actions at epochs {prev} and "
                f"{cur} violate the {config.cooldown_epochs}-epoch cooldown"
            )

    # Differential oracle: the frozen control plane (no re-planning, no
    # elasticity) must match the manually chained batch epochs
    # bit-identically.
    frozen = config.frozen()
    frozen_run = ServingControlPlane(frozen).run()
    for s, batch in zip(frozen_run.snapshots, chain_batch_epochs(frozen)):
        if not s.result.same_outcome(batch):
            failures.append(
                f"serving-oracle: frozen epoch {s.epoch} diverged from the "
                f"chained batch path (rejected {s.num_rejected} vs "
                f"{batch.num_rejected})"
            )

    summary = {
        "digest": result.digest(),
        "frozen_digest": frozen_run.digest(),
        "requests": result.total_generated,
        "rejected": result.total_rejected,
        "replans": result.replans,
        "copies": result.total_replicas_copied,
        "adds": result.servers_added,
        "drains": result.servers_drained,
        "final_servers": result.final_num_servers,
    }
    return failures, summary


def run_case(case: FuzzCase) -> CaseOutcome:
    """Run every differential check for one case."""
    try:
        if case.kind == "des":
            failures, summary = _run_des(case.params)
        elif case.kind == "sa":
            failures, summary = _run_sa(case.params)
        elif case.kind == "serving":
            failures, summary = _run_serving(case.params)
        else:
            raise ValueError(f"unknown case kind {case.kind!r}")
    except Exception as exc:  # a crash is a finding, not an abort
        # The exception type is part of the shrink category, so greedy
        # reduction cannot morph one crash into an unrelated one.
        failures = [f"exception-{type(exc).__name__}: {exc}"]
        summary = {}
    return CaseOutcome(case.name, tuple(failures), summary)


def replay(case_or_path: "FuzzCase | str | Path") -> CaseOutcome:
    """Replay a case (or a serialized corpus file)."""
    if not isinstance(case_or_path, FuzzCase):
        from .corpus import load_case

        case_or_path = load_case(case_or_path)
    return run_case(case_or_path)


def fuzz(
    num_cases: int,
    seed: int,
    *,
    corpus_dir: "str | Path | None" = None,
    shrink: bool = True,
    chaos: bool = False,
    serving: bool = False,
    adversarial: bool = False,
    log=None,
) -> FuzzReport:
    """Run a fuzz campaign; shrink + serialize failures when a dir is given.

    ``chaos=True`` forces failure injection on in every DES case (the CI
    chaos-smoke configuration), so all 200 smoke cases exercise the
    crash/repair/failover machinery rather than the ~50% the default draw
    would.  ``serving=True`` draws serving control-plane cases instead of
    the des/sa mix (the CI serving-smoke configuration); the default mix
    is untouched so historical campaign digests stay stable.
    ``adversarial=True`` layers mid-horizon popularity shifts (inversion,
    hotset flip, theta ramp — :mod:`repro.workload.adversarial`) onto
    every DES case, injected post-draw from a child of each case's
    ``trace_seed`` so the base case stream is unchanged.
    """
    from .scenarios import draw_adversarial_params
    start = time.perf_counter()
    digest = hashlib.sha256()
    failing: list[CaseOutcome] = []
    corpus_paths: list[str] = []
    children = np.random.SeedSequence(int(seed)).spawn(int(num_cases))
    for index, child in enumerate(children):
        case = (
            draw_serving_case(child, index)
            if serving
            else draw_case(child, index)
        )
        if chaos and case.kind == "des" and not case.params["failures"]:
            case = FuzzCase(
                case.kind, case.name, {**case.params, "failures": True}
            )
        if adversarial and case.kind == "des":
            case = FuzzCase(
                case.kind,
                case.name,
                {**case.params, **draw_adversarial_params(case.params)},
            )
        outcome = run_case(case)
        digest.update(
            json.dumps(
                {"name": outcome.name, "summary": outcome.summary},
                sort_keys=True,
            ).encode()
        )
        if not outcome.ok:
            if shrink:
                minimal, messages = shrink_case(
                    case, lambda c: list(run_case(c).failures)
                )
                outcome = CaseOutcome(
                    minimal.name, tuple(messages), run_case(minimal).summary
                )
                case = minimal
            failing.append(outcome)
            if corpus_dir is not None:
                from .corpus import save_case

                path = save_case(
                    case,
                    corpus_dir,
                    reason=f"fuzz --seed {seed} case {index}",
                    violations=list(outcome.failures),
                )
                corpus_paths.append(str(path))
            if log is not None:
                log(f"FAIL {case.name}: {outcome.failures[0]}")
        if log is not None and (index + 1) % 50 == 0:
            log(
                f"  ... {index + 1}/{num_cases} cases, "
                f"{len(failing)} failing"
            )
    return FuzzReport(
        cases=int(num_cases),
        seed=int(seed),
        digest=digest.hexdigest(),
        failures=tuple(failing),
        corpus_paths=tuple(corpus_paths),
        elapsed_sec=time.perf_counter() - start,
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="Deterministic differential fuzzing of the DES and the "
        "annealer (see repro.verify).",
    )
    parser.add_argument("--cases", type=int, default=200,
                        help="number of cases to draw (default: 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default: 0)")
    parser.add_argument("--corpus-dir", default="tests/corpus",
                        help="where shrunk failing cases are serialized "
                        "(default: tests/corpus)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="serialize failing cases without minimizing")
    parser.add_argument("--chaos", action="store_true",
                        help="force failure injection on in every DES case")
    parser.add_argument("--serving", action="store_true",
                        help="draw serving control-plane cases instead of "
                        "the des/sa mix")
    parser.add_argument("--adversarial", action="store_true",
                        help="layer mid-horizon popularity shifts "
                        "(inversion / hotset flip / theta ramp) onto "
                        "every DES case")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress output")
    args = parser.parse_args(argv)

    log = (lambda msg: None) if args.quiet else print
    report = fuzz(
        args.cases,
        args.seed,
        corpus_dir=args.corpus_dir,
        shrink=not args.no_shrink,
        chaos=args.chaos,
        serving=args.serving,
        adversarial=args.adversarial,
        log=log,
    )
    print(
        f"fuzz: {report.cases} cases (seed {report.seed}) in "
        f"{report.elapsed_sec:.1f}s, {len(report.failures)} failing, "
        f"digest {report.digest[:16]}"
    )
    for outcome in report.failures:
        print(f"  {outcome.name}:")
        for message in outcome.failures[:5]:
            print(f"    {message}")
    for path in report.corpus_paths:
        print(f"  repro written: {path}")
    return 1 if report.failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())

"""JSON repro corpus: shrunk failing fuzz cases as regression tests.

Failing cases found by :mod:`repro.verify.fuzz` are shrunk and serialized
here; ``tests/test_fuzz_corpus.py`` auto-collects every ``*.json`` under
``tests/corpus/`` and replays it on each test run, so a once-found
divergence can never silently return.  Hand-written cases pinning known
edge cases (failure at t=0, repair while draining, saturated backbone,
horizon truncation) live in the same corpus.
"""

from __future__ import annotations

import json
from pathlib import Path

from .scenarios import FuzzCase

__all__ = ["save_case", "load_case", "load_corpus"]


def save_case(
    case: FuzzCase,
    directory: "str | Path",
    *,
    reason: str = "",
    violations: "list[str] | None" = None,
) -> Path:
    """Serialize *case* under *directory*; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = case.to_json()
    if reason:
        payload["reason"] = reason
    if violations:
        payload["violations"] = list(violations)
    path = directory / f"{case.name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: "str | Path") -> FuzzCase:
    """Load one serialized case."""
    return FuzzCase.from_json(json.loads(Path(path).read_text()))


def load_corpus(directory: "str | Path") -> list[tuple[Path, FuzzCase]]:
    """All ``(path, case)`` pairs under *directory*, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_case(path)) for path in sorted(directory.glob("*.json"))
    ]

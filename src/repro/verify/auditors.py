"""Pluggable invariant auditors for the cluster simulator.

Every simulated trajectory must satisfy a set of structural invariants that
follow from the system model (and from the analytical VoD literature's
conservation arguments) regardless of workload, layout, or feature flags:

* **bandwidth/stream caps** — a server's occupied outgoing bandwidth never
  exceeds its link (within the admission epsilon) and its stream count
  never exceeds the optional disk-subsystem cap;
* **stream conservation** — every admitted stream is accounted for exactly
  once: it departed, was dropped by a crash, or is still active at the
  horizon; and admissions + rejections equal the simulated arrivals;
* **replica distinctness / placement respect** — layouts keep one replica
  per (video, server) pair by construction, and every non-redirected
  stream is served by a server that actually holds a replica;
* **event-time monotonicity** — the event loop processes events in
  non-decreasing time order and never runs time backwards;
* **objective accounting** — the per-server load integrals (the ``l_k``
  feeding the Eq. 2/3 imbalance objective) equal an independently
  accumulated per-stream tally, and the server/backbone bandwidth
  bookkeeping matches an independent shadow account.

Auditors are *declarative*: each one names the fused per-event checks it
enables (see :mod:`repro.verify.audit` — the audited loop performs all
per-event instrumentation in one pass for speed, and the auditor list
selects which violations are reported) and implements a ``finish`` hook
over the collected :class:`~repro.verify.audit.Trajectory`.  Custom
auditors may subclass :class:`InvariantAuditor` and add their own
``finish`` logic; per-event granularity comes for free through the
trajectory's shadow counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

__all__ = [
    "Violation",
    "InvariantViolation",
    "InvariantAuditor",
    "BandwidthCapAuditor",
    "StreamConservationAuditor",
    "ReplicaDistinctnessAuditor",
    "EventMonotonicityAuditor",
    "ObjectiveAccountingAuditor",
    "FailureAvailabilityAuditor",
    "standard_auditors",
    "failure_auditors",
]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cluster_sim.metrics import SimulationResult
    from ..cluster_sim.server import StreamingServer
    from .audit import Trajectory

#: Admission slack shared with the simulator (Mb/s).
_EPS_MBPS = 1e-6

#: Relative tolerance for cross-checking independently accumulated floats
#: (integrals and shadow bandwidth accounts sum the same quantities in a
#: different order, so they agree to accumulation error, not bitwise).
_REL_TOL = 1e-7
_ABS_TOL = 1e-6


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _ABS_TOL + _REL_TOL * max(abs(a), abs(b))


@dataclass(frozen=True)
class Violation:
    """One invariant violation, localized to a check and a simulated time."""

    check: str
    time_min: float
    message: str

    def __str__(self) -> str:
        return f"[{self.check} @ t={self.time_min:.4f}] {self.message}"


class InvariantViolation(RuntimeError):
    """Raised when an audited run violated at least one invariant."""

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = list(violations)
        lines = "\n  ".join(str(v) for v in self.violations[:20])
        extra = (
            f"\n  ... and {len(self.violations) - 20} more"
            if len(self.violations) > 20
            else ""
        )
        super().__init__(
            f"{len(self.violations)} invariant violation(s):\n  {lines}{extra}"
        )


class InvariantAuditor:
    """Base auditor: a named set of per-event checks plus a finish hook.

    ``checks`` names the fused per-event checks this auditor enables in the
    audited loop (see :mod:`repro.verify.audit`); ``finish`` runs once at
    the end of the run over the collected trajectory and returns any
    end-of-run violations.
    """

    #: Stable identifier (used in violation records and reports).
    name: str = "auditor"
    #: Per-event check names this auditor turns on.
    checks: frozenset[str] = frozenset()

    def finish(
        self,
        trajectory: "Trajectory",
        servers: "list[StreamingServer]",
        result: "SimulationResult",
    ) -> list[Violation]:
        """End-of-run checks; return violations (empty when clean)."""
        del trajectory, servers, result
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class BandwidthCapAuditor(InvariantAuditor):
    """Per-server outgoing bandwidth and stream caps are never exceeded."""

    name = "bandwidth_cap"
    checks = frozenset({"bandwidth", "stream_cap"})

    def finish(self, trajectory, servers, result):
        violations = []
        for server in servers:
            if server.peak_load_mbps > server.bandwidth_mbps + _EPS_MBPS:
                violations.append(
                    Violation(
                        self.name,
                        trajectory.horizon_min,
                        f"server {server.server_id} peak load "
                        f"{server.peak_load_mbps:.6f} Mb/s exceeds its "
                        f"{server.bandwidth_mbps:.6f} Mb/s link",
                    )
                )
            if (
                server.max_streams is not None
                and server.active_streams > server.max_streams
            ):
                violations.append(
                    Violation(
                        self.name,
                        trajectory.horizon_min,
                        f"server {server.server_id} ended with "
                        f"{server.active_streams} active streams over its "
                        f"cap of {server.max_streams}",
                    )
                )
        return violations


class StreamConservationAuditor(InvariantAuditor):
    """Admissions = departures + drops + still-active; admits + rejects = arrivals."""

    name = "stream_conservation"
    checks = frozenset({"conservation"})

    def finish(self, trajectory, servers, result):
        t = trajectory
        violations = []
        accounted = t.departed + t.dropped + t.active_end
        if t.admitted != accounted:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"{t.admitted} admissions but {t.departed} departures + "
                    f"{t.dropped} drops + {t.active_end} active = {accounted}",
                )
            )
        if t.admitted + t.rejected != result.num_requests:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"admitted {t.admitted} + rejected {t.rejected} != "
                    f"{result.num_requests} simulated arrivals",
                )
            )
        if result.num_requests + result.num_truncated != t.arrivals_total:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"simulated {result.num_requests} + truncated "
                    f"{result.num_truncated} != trace length {t.arrivals_total}",
                )
            )
        if result.streams_dropped != t.dropped:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"result reports {result.streams_dropped} dropped streams, "
                    f"audit counted {t.dropped}",
                )
            )
        if result.num_redirected != t.redirected:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"result reports {result.num_redirected} redirected "
                    f"streams, audit counted {t.redirected}",
                )
            )
        served = int(result.server_served.sum())
        if served != t.admitted:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"servers report {served} served streams, audit "
                    f"admitted {t.admitted}",
                )
            )
        return violations


class ReplicaDistinctnessAuditor(InvariantAuditor):
    """Layout structure is sound and dispatch respects replica placement.

    The matrix layout representation makes Eq. (6) distinctness structural
    (one cell per (video, server) pair), so the run-time content of this
    auditor is *placement respect*: every non-redirected admission lands on
    a server whose rate-matrix entry for the video is positive.  ``finish``
    re-checks the layout's structural sanity (finite, non-negative rates).
    """

    name = "replica_distinctness"
    checks = frozenset({"placement"})

    def finish(self, trajectory, servers, result):
        violations = []
        matrix = trajectory.rate_matrix
        if matrix is not None:
            import numpy as np

            if not bool(np.all(np.isfinite(matrix))) or bool(
                np.any(matrix < 0.0)
            ):
                violations.append(
                    Violation(
                        self.name,
                        0.0,
                        "layout rate matrix contains negative or non-finite "
                        "entries",
                    )
                )
        return violations


class EventMonotonicityAuditor(InvariantAuditor):
    """The event loop never processes events out of time order."""

    name = "event_monotonicity"
    checks = frozenset({"monotonic"})

    def finish(self, trajectory, servers, result):
        if trajectory.last_event_time > trajectory.horizon_min + _ABS_TOL:
            return [
                Violation(
                    self.name,
                    trajectory.last_event_time,
                    f"an event at t={trajectory.last_event_time:.6f} was "
                    f"processed past the horizon {trajectory.horizon_min:.6f}",
                )
            ]
        return []


class ObjectiveAccountingAuditor(InvariantAuditor):
    """Load integrals and bandwidth bookkeeping match a shadow account.

    The audited loop accumulates, independently of ``StreamingServer``'s
    own bookkeeping, (a) each server's occupied bandwidth and (b) the exact
    per-stream contribution to the load integral
    (``rate * overlap([start, end], [0, horizon])``).  At the end of the
    run both must agree with the server's internal state — the integrals to
    accumulation tolerance, the occupancy to the admission epsilon.  This
    is the auditor that catches broken release/failure accounting, the
    class of bug that silently skews every Figure 6 imbalance number.
    """

    name = "objective_accounting"
    checks = frozenset({"accounting"})

    def finish(self, trajectory, servers, result):
        t = trajectory
        violations = []
        for server in servers:
            k = server.server_id
            if not _close(t.shadow_used[k], server.used_mbps):
                violations.append(
                    Violation(
                        self.name,
                        t.horizon_min,
                        f"server {k} final occupancy {server.used_mbps:.9f} "
                        f"Mb/s != shadow account {t.shadow_used[k]:.9f}",
                    )
                )
            expected = t.load_integral[k]
            measured = (
                float(result.server_time_avg_load_mbps[k]) * t.horizon_min
            )
            if not _close(expected, measured):
                violations.append(
                    Violation(
                        self.name,
                        t.horizon_min,
                        f"server {k} load integral {measured:.6f} Mb/s*min "
                        f"!= per-stream tally {expected:.6f}",
                    )
                )
            if server.active_streams != t.shadow_streams[k]:
                violations.append(
                    Violation(
                        self.name,
                        t.horizon_min,
                        f"server {k} reports {server.active_streams} active "
                        f"streams, shadow account has {t.shadow_streams[k]}",
                    )
                )
        if t.backbone_capacity_mbps > 0.0 and not _close(
            t.shadow_backbone, t.backbone_used_mbps
        ):
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"backbone occupancy {t.backbone_used_mbps:.9f} Mb/s != "
                    f"shadow account {t.shadow_backbone:.9f}",
                )
            )
        return violations


class FailureAvailabilityAuditor(InvariantAuditor):
    """Chaos-specific invariants: down servers never serve, counters agree.

    The availability extension introduces its own conservation laws on top
    of the stream-level ones:

    * **no zombie admissions** — no stream starts on server ``k`` inside a
      down interval ``[crash_t, repair_t)`` (an unrepaired crash extends to
      the horizon);
    * **failure-counter consistency** — ``num_failures``/``num_recoveries``
      equal the crash/repair records the audited loop observed, every
      successful failover consumed at least one scheduled retry, and
      requests lost to failures are a subset of all rejections;
    * **downtime bounds** — no server is down longer than the horizon, and
      total reported downtime is positive only when failures occurred.
    """

    name = "failure_availability"
    checks = frozenset({"conservation"})

    def finish(self, trajectory, servers, result):
        t = trajectory
        violations = []
        if result.num_failures != len(t.crash_records):
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"result reports {result.num_failures} failures, audit "
                    f"observed {len(t.crash_records)} crash events",
                )
            )
        if result.num_recoveries != len(t.repair_records):
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"result reports {result.num_recoveries} recoveries, "
                    f"audit observed {len(t.repair_records)} repair events",
                )
            )
        if result.num_failovers > result.num_retries:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"{result.num_failovers} failover admissions exceed the "
                    f"{result.num_retries} retries ever scheduled",
                )
            )
        if result.num_lost_to_failure > result.num_rejected:
            violations.append(
                Violation(
                    self.name,
                    t.horizon_min,
                    f"{result.num_lost_to_failure} requests lost to failure "
                    f"exceed {result.num_rejected} total rejections",
                )
            )
        downtime = result.server_downtime_min
        if downtime is not None:
            for k, minutes in enumerate(downtime):
                if minutes < -_ABS_TOL or minutes > t.horizon_min + _ABS_TOL:
                    violations.append(
                        Violation(
                            self.name,
                            t.horizon_min,
                            f"server {k} downtime {float(minutes):.6f} min "
                            f"outside [0, horizon={t.horizon_min:.6f}]",
                        )
                    )
            if result.num_failures == 0 and float(max(downtime, default=0.0)) > 0.0:
                violations.append(
                    Violation(
                        self.name,
                        t.horizon_min,
                        "downtime reported without any failure event",
                    )
                )
        violations.extend(self._check_zombie_admissions(t))
        return violations

    def _check_zombie_admissions(self, t: "Trajectory") -> list[Violation]:
        """No admission may start inside a server's down interval."""
        if not t.crash_records or t.admission_times is None:
            return []
        # Build per-server down intervals [crash, repair) from the crash
        # and repair records; an unrepaired crash extends to the horizon.
        repairs: dict[int, list[float]] = {}
        for time_min, server_id in t.repair_records:
            repairs.setdefault(int(server_id), []).append(float(time_min))
        for times in repairs.values():
            times.sort()
        intervals: list[tuple[int, float, float]] = []
        for crash in sorted(t.crash_records):
            crash_t = float(crash[0])
            server_id = int(crash[1])
            later = [r for r in repairs.get(server_id, ()) if r > crash_t]
            repair_t = later[0] if later else t.horizon_min
            intervals.append((server_id, crash_t, repair_t))
        violations = []
        for server_id, crash_t, repair_t in intervals:
            mask = (t.admission_servers == server_id) & (
                t.admission_times >= crash_t
            ) & (t.admission_times < repair_t)
            count = int(mask.sum())
            if count:
                violations.append(
                    Violation(
                        self.name,
                        crash_t,
                        f"{count} stream(s) admitted on server {server_id} "
                        f"while it was down in [{crash_t:.4f}, "
                        f"{repair_t:.4f})",
                    )
                )
        return violations


def standard_auditors() -> list[InvariantAuditor]:
    """The full default checker list (every invariant enabled)."""
    return [
        BandwidthCapAuditor(),
        StreamConservationAuditor(),
        ReplicaDistinctnessAuditor(),
        EventMonotonicityAuditor(),
        ObjectiveAccountingAuditor(),
    ]


def failure_auditors() -> list[InvariantAuditor]:
    """Chaos-run checker list: every standard invariant plus availability.

    Use this registry when the run injects failures; on failure-free runs
    the extra auditor is a no-op, so it is always safe to include.
    """
    return standard_auditors() + [FailureAvailabilityAuditor()]

"""The one-call facade: replicate -> place -> (refine) -> simulate.

:func:`solve` chains the full experiment pipeline of the paper behind a
single :class:`PipelineConfig`, so a design point that used to take five
imports and manual seed plumbing is one call::

    from repro import PipelineConfig, solve

    result = solve(PipelineConfig(theta=0.75, replication_degree=1.2,
                                  arrival_rate_per_min=30.0))
    print(result.format())

Reproducibility contract: the facade derives its workload seed through
:func:`repro.experiments.workload_seed` — the same derivation
``simulate_combo`` uses — so ``solve()`` reproduces the experiment CLI's
Figure-4/5/6 numbers bit-identically for the same setup and design point.

Two refinement stages are optional:

* ``refine=True`` hill-climbs the placement's Eq. (2) imbalance
  (:func:`repro.placement.refine_placement`);
* ``anneal=True`` switches to the scalable-bit-rate setting (Sec. 5.4) and
  replaces replication+placement entirely with simulated-annealing chains
  over :class:`repro.annealing.ScalableBitRateProblem`.

Pass ``observer=`` (a :class:`repro.observe.Observer`) to record per-phase
wall time, per-server utilization timelines, SA level traces and sampled
simulator events; observed runs are bit-identical to unobserved ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .analysis.stats import Summary, summarize
from .analysis.surrogate import SurrogateWorkload, evaluate_layouts
from .config_core import SimulationConfig
from .experiments.runner import workload_seed
from .observe.profile import timed
from .placement import (
    GreedyLeastLoadedPlacer,
    PopularityStripePlacer,
    RoundRobinPlacer,
    SmallestLoadFirstPlacer,
    refine_placement,
)
from .runtime import ParallelRunner, make_trials, use_runner
from .replication import REPLICATOR_REGISTRY

__all__ = ["PipelineConfig", "PipelineResult", "SurrogateScreen", "solve"]

#: Replication algorithms selectable by name in :class:`PipelineConfig` —
#: the shared registry in :mod:`repro.replication` (one source of truth
#: for the facade, the CLI and the surrogate screen).
REPLICATORS = REPLICATOR_REGISTRY

#: Placement algorithms selectable by name in :class:`PipelineConfig`.
PLACERS = {
    "slf": SmallestLoadFirstPlacer,
    "round_robin": RoundRobinPlacer,
    "greedy": GreedyLeastLoadedPlacer,
    "p2p_stripe": PopularityStripePlacer,
}


@dataclass(frozen=True)
class PipelineConfig(SimulationConfig):
    """Everything :func:`solve` needs for one design point.

    The simulation-facing knobs shared with the serving plane (theta,
    replication degree, dispatcher, **engine**, backbone, chaos stack,
    shards, setup) live on the common :class:`repro.config_core.
    SimulationConfig` base and are documented there; the fields below
    are the batch pipeline's own.

    Attributes
    ----------
    arrival_rate_per_min:
        Poisson request rate of the simulated peak period.
    num_runs:
        Independent simulation runs to average; ``None`` takes the setup's
        default (20 for the paper setup).
    replicator / placer:
        Algorithm names (see :data:`REPLICATORS` / :data:`PLACERS`).
    refine:
        Hill-climb the placement (Eq. 2 imbalance) before simulating.
    refine_max_steps:
        Step cap for the refinement pass.
    anneal:
        Use SA over the scalable-bit-rate problem *instead of* the
        replicator/placer pair (requires >= 2 allowed bit rates).
    anneal_chains / anneal_steps_per_level / anneal_max_levels / anneal_seed:
        SA chain count, per-level step budget, level cap, and chain seed.
    surrogate:
        Surrogate-guided sweep mode: instead of simulating the single
        replicator/placer design, screen ``screen_candidates`` candidate
        layouts with the analytical Erlang fixed-point surrogate
        (:mod:`repro.analysis.surrogate`), DES-simulate only the
        ``screen_top_k`` best-predicted survivors, and keep the winner.
        Incompatible with ``anneal`` (scalable rates are outside the
        Erlang model) and with ``shards > 1``.
    screen_candidates:
        Candidate layouts to score analytically: every replicator x
        placer combo, its Eq. (2)-refined variant, and random feasible
        layouts filling up the remainder.
    screen_top_k:
        Survivors of the analytical screen that get DES confirmation.
    screen_seed:
        Seed for the random candidate layouts of the screen.
    seed_salt:
        Extra salt folded into the workload seed.
    """

    arrival_rate_per_min: float = 30.0
    num_runs: int | None = None
    replicator: str = "zipf"
    placer: str = "slf"
    refine: bool = False
    refine_max_steps: int = 10_000
    anneal: bool = False
    anneal_chains: int = 2
    anneal_steps_per_level: int = 200
    anneal_max_levels: int = 60
    anneal_seed: int = 0
    surrogate: bool = False
    screen_candidates: int = 24
    screen_top_k: int = 3
    screen_seed: int = 0
    seed_salt: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.replicator not in REPLICATORS:
            raise ValueError(
                f"unknown replicator {self.replicator!r}; "
                f"choose from {sorted(REPLICATORS)}"
            )
        if self.placer not in PLACERS:
            raise ValueError(
                f"unknown placer {self.placer!r}; choose from {sorted(PLACERS)}"
            )
        if self.num_runs is not None and self.num_runs < 1:
            raise ValueError(f"num_runs must be >= 1, got {self.num_runs}")
        if self.surrogate:
            if self.anneal:
                raise ValueError(
                    "surrogate screening needs fixed-rate layouts; it is "
                    "incompatible with anneal=True (scalable bit rates)"
                )
            if self.shards > 1:
                raise ValueError(
                    "surrogate screening does not compose with shards > 1"
                )
            if self.screen_top_k < 1:
                raise ValueError(
                    f"screen_top_k must be >= 1, got {self.screen_top_k}"
                )
            if self.screen_candidates < self.screen_top_k:
                raise ValueError(
                    "screen_candidates must be >= screen_top_k, got "
                    f"{self.screen_candidates} < {self.screen_top_k}"
                )


@dataclass(frozen=True)
class SurrogateScreen:
    """Record of one surrogate-guided screening pass.

    ``predicted_rejections[i]`` is the analytical Erlang fixed-point
    prediction for candidate ``labels[i]``; ``survivors`` lists the
    top-K candidate indices that were DES-confirmed, ``confirmed``
    their simulated rejection summaries (same order), and ``chosen``
    the winning candidate's index.
    """

    labels: tuple = field(default=())
    predicted_rejections: np.ndarray = field(repr=False, default=None)
    survivors: tuple = field(default=())
    confirmed: tuple = field(repr=False, default=())
    chosen: int = 0
    diagnostics: object = field(repr=False, default=None)

    @property
    def num_candidates(self) -> int:
        return len(self.labels)

    @property
    def chosen_label(self) -> str:
        return self.labels[self.chosen]

    def format(self) -> str:
        lines = [
            f"screen        {self.num_candidates} candidates -> "
            f"{len(self.survivors)} DES-confirmed ({self.diagnostics})"
        ]
        confirmed = dict(zip(self.survivors, self.confirmed))
        order = sorted(
            range(self.num_candidates),
            key=lambda i: self.predicted_rejections[i],
        )
        for rank, index in enumerate(order):
            if index in confirmed:
                note = f"DES {confirmed[index].mean:.4f}"
                if index == self.chosen:
                    note += "  <- chosen"
            elif rank < 8:
                note = "screened out"
            else:
                continue  # keep the report short past the top ranks
            lines.append(
                f"  {self.labels[index]:<20} predicted "
                f"{self.predicted_rejections[index]:.4f}  {note}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PipelineResult:
    """Everything one :func:`solve` call produced.

    ``replication``/``refinement``/``sa_result``/``screen`` are ``None``
    for the stages the configuration skipped.
    """

    config: PipelineConfig
    layout: object = field(repr=False)
    replication: object = field(repr=False, default=None)
    refinement: object = field(repr=False, default=None)
    sa_result: object = field(repr=False, default=None)
    screen: SurrogateScreen | None = field(repr=False, default=None)
    results: list = field(repr=False, default_factory=list)
    rejection: Summary | None = None
    imbalance_percent: Summary | None = None
    report: object = field(repr=False, default=None)

    def format(self) -> str:
        """Human-readable pipeline summary (the CLI's output)."""
        config = self.config
        lines = [
            (
                f"pipeline: theta={config.theta:g} "
                f"degree={config.replication_degree:g} "
                f"rate={config.arrival_rate_per_min:g}/min "
                f"({'sa' if config.anneal else config.replicator + '+' + config.placer}"
                f"{'+refine' if config.refine else ''}, "
                f"dispatcher={config.dispatcher})"
            )
        ]
        if self.replication is not None:
            lines.append(
                f"  replication  {self.replication.total_replicas} replicas, "
                f"max weight {self.replication.max_weight():.4f}"
            )
        if self.refinement is not None:
            lines.append(
                f"  refinement   imbalance {self.refinement.initial_imbalance:.4f}"
                f" -> {self.refinement.final_imbalance:.4f} "
                f"({self.refinement.moves} moves, {self.refinement.swaps} swaps)"
            )
        if self.sa_result is not None:
            lines.append(
                f"  annealing    best cost {self.sa_result.best_cost:.6f} "
                f"({self.sa_result.levels} levels, {self.sa_result.steps:,} steps)"
            )
        if self.screen is not None:
            lines.extend("  " + line for line in self.screen.format().splitlines())
        if self.rejection is not None:
            lines.append(f"  rejection    {self.rejection}")
        if self.imbalance_percent is not None:
            lines.append(f"  L (%)        {self.imbalance_percent}")
        if self.report is not None:
            lines.extend("  " + line for line in self.report.format().splitlines())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def _design_layout(config: PipelineConfig, sink, observer):
    """Replication + placement (+ optional refinements) for the config."""
    setup = config.setup
    if config.anneal:
        # Scalable-rate setting: SA chains over the Eq. (1) objective
        # replace the replicate+place pair (Sec. 5.4).
        from .annealing import ScalableBitRateProblem, SimulatedAnnealer, run_chains

        problem = ScalableBitRateProblem(
            setup.problem(
                config.theta,
                config.replication_degree,
                arrival_rate_per_min=config.arrival_rate_per_min,
                scalable=True,
            )
        )
        annealer = SimulatedAnnealer(
            steps_per_level=config.anneal_steps_per_level,
            max_levels=config.anneal_max_levels,
        )
        with timed(sink, "anneal"):
            chains = run_chains(
                problem,
                annealer,
                num_chains=config.anneal_chains,
                seed=config.anneal_seed,
            )
            best = chains.best
            if observer is not None:
                observer.sa_run_finished(best)
        return problem.to_layout(best.best_state), None, None, best

    popularity = setup.popularity(config.theta)
    budget = setup.replica_budget(config.replication_degree)
    capacity = setup.capacity_replicas(config.replication_degree)
    with timed(sink, "replicate"):
        replication = REPLICATORS[config.replicator]().replicate(
            popularity.probabilities, setup.num_servers, budget
        )
    with timed(sink, "place"):
        layout = PLACERS[config.placer]().place(
            replication, capacity, bit_rate_mbps=setup.bit_rate_mbps
        )
    refinement = None
    if config.refine:
        with timed(sink, "refine"):
            refinement = refine_placement(
                layout,
                popularity.probabilities,
                capacity,
                max_steps=config.refine_max_steps,
            )
            layout = refinement.layout
    return layout, replication, refinement, None


def _screen_candidates(config: PipelineConfig):
    """Deterministic candidate layouts for the surrogate screen.

    Every replicator x placer combo, an Eq. (2)-refined variant of each,
    and seeded random feasible layouts (of the config's replicator)
    filling up to ``screen_candidates``.
    """
    from .placement import RandomFeasiblePlacer

    setup = config.setup
    popularity = setup.popularity(config.theta)
    budget = setup.replica_budget(config.replication_degree)
    capacity = setup.capacity_replicas(config.replication_degree)
    replications = {
        name: cls().replicate(popularity.probabilities, setup.num_servers, budget)
        for name, cls in REPLICATORS.items()
    }

    labels, layouts = [], []

    def add(label: str, layout) -> None:
        labels.append(label)
        layouts.append(layout)

    for rep_name, replication in replications.items():
        for placer_name, placer_cls in PLACERS.items():
            if len(labels) >= config.screen_candidates:
                break
            layout = placer_cls().place(
                replication, capacity, bit_rate_mbps=setup.bit_rate_mbps
            )
            add(f"{rep_name}+{placer_name}", layout)
    for label, layout in list(zip(labels, layouts)):
        if len(labels) >= config.screen_candidates:
            break
        refinement = refine_placement(
            layout,
            popularity.probabilities,
            capacity,
            max_steps=config.refine_max_steps,
        )
        add(f"{label}+refine", refinement.layout)
    base_replication = replications[config.replicator]
    index = 0
    while len(labels) < config.screen_candidates:
        rng = np.random.default_rng(
            np.random.SeedSequence((config.screen_seed, index))
        )
        add(
            f"{config.replicator}+random{index:02d}",
            RandomFeasiblePlacer(rng).place(
                base_replication, capacity, bit_rate_mbps=setup.bit_rate_mbps
            ),
        )
        index += 1
    return labels, layouts


def _screen_and_confirm(config: PipelineConfig, sink, runner):
    """Surrogate screen -> DES-confirm top-K -> keep the winner.

    Returns ``(layout, screen, results)`` where *results* are the
    winner's simulation runs (they double as the pipeline's results —
    the winner is never simulated twice).
    """
    setup = config.setup
    with timed(sink, "screen"):
        labels, layouts = _screen_candidates(config)
        workload = SurrogateWorkload.from_setup(
            setup, config.theta, config.arrival_rate_per_min
        )
        batch = evaluate_layouts(
            layouts,
            workload,
            setup.cluster(config.replication_degree),
            dispatcher=config.dispatcher,
        )
        survivors = tuple(
            int(i) for i in batch.ranking()[: config.screen_top_k]
        )

    num_runs = config.num_runs if config.num_runs is not None else setup.num_runs
    seed = workload_seed(
        setup.seed, config.arrival_rate_per_min, config.theta, config.seed_salt
    )
    confirmed_results = []
    with timed(sink, "confirm"):
        for index in survivors:
            trials = make_trials(
                setup,
                layouts[index],
                theta=config.theta,
                degree=config.replication_degree,
                arrival_rate_per_min=config.arrival_rate_per_min,
                seed=seed,
                num_runs=num_runs,
                dispatcher=config.dispatcher,
                backbone_mbps=config.backbone_mbps,
                horizon_min=setup.peak_minutes,
                failures=config.failures,
                failover=config.failover,
                rereplication=config.rereplication,
                failover_on_down=config.failover_on_down,
                engine=config.engine,
            )
            confirmed_results.append(runner.run_trials(trials))
    confirmed = tuple(
        summarize([r.rejection_rate for r in results])
        for results in confirmed_results
    )
    best = min(range(len(survivors)), key=lambda i: confirmed[i].mean)
    screen = SurrogateScreen(
        labels=tuple(labels),
        predicted_rejections=batch.rejection_rates,
        survivors=survivors,
        confirmed=confirmed,
        chosen=survivors[best],
        diagnostics=batch.diagnostics,
    )
    return layouts[screen.chosen], screen, confirmed_results[best]


def solve(
    config: PipelineConfig,
    *,
    observer=None,
    runner: ParallelRunner | None = None,
    layout=None,
) -> PipelineResult:
    """Run the full pipeline for one design point.

    Parameters
    ----------
    config:
        The design point and algorithm selection.
    observer:
        Optional :class:`repro.observe.Observer`.  When set, simulations
        run serially in-process (an observer cannot cross the worker-pool
        boundary) with full instrumentation; results are bit-identical to
        the unobserved pooled path.
    runner:
        Optional :class:`repro.runtime.ParallelRunner` to simulate
        through; a fresh serial runner is used otherwise.  Ignored for the
        simulation stage when ``observer`` is set (see above), but still
        accumulates the run report.
    layout:
        Optional pre-built :class:`repro.model.layout.ReplicaLayout` to
        simulate directly, skipping the replicate/place/refine design
        stage (``PipelineResult.replication``/``refinement`` come back
        ``None``).  This is how ``experiments.simulate_combo`` reuses one
        layout across an arrival-rate sweep.  Incompatible with
        ``surrogate`` and ``anneal`` modes, which design their own layouts.
    """
    if layout is not None and (config.surrogate or config.anneal):
        raise ValueError(
            "layout= overrides the design stage; it is incompatible with "
            "surrogate=True and anneal=True, which build their own layouts"
        )
    if runner is None:
        runner = ParallelRunner(jobs=1, observer=observer)
    report = runner.report
    sink = observer if observer is not None else report

    if config.surrogate:
        with use_runner(runner):
            layout, screen, results = _screen_and_confirm(config, sink, runner)
        if observer is not None:
            observer.fold_into_report(report)
        return PipelineResult(
            config=config,
            layout=layout,
            screen=screen,
            results=results,
            rejection=summarize([r.rejection_rate for r in results]),
            imbalance_percent=summarize(
                [r.load_imbalance_percent() for r in results]
            ),
            report=report,
        )

    with use_runner(runner):
        if layout is None:
            layout, replication, refinement, sa_result = _design_layout(
                config, sink, observer
            )
        else:
            replication = refinement = sa_result = None

        setup = config.setup
        num_runs = config.num_runs if config.num_runs is not None else setup.num_runs
        seed = workload_seed(
            setup.seed, config.arrival_rate_per_min, config.theta, config.seed_salt
        )
        trials = make_trials(
            setup,
            layout,
            theta=config.theta,
            degree=config.replication_degree,
            arrival_rate_per_min=config.arrival_rate_per_min,
            seed=seed,
            num_runs=num_runs,
            dispatcher=config.dispatcher,
            backbone_mbps=config.backbone_mbps,
            horizon_min=setup.peak_minutes,
            failures=config.failures,
            failover=config.failover,
            rereplication=config.rereplication,
            failover_on_down=config.failover_on_down,
            num_shards=config.shards,
            engine=config.engine,
        )
        if observer is not None:
            # Serial in-process simulation so the observer sees every run;
            # same trace regeneration and simulator as the pooled path.
            from .cluster_sim import (
                engine_run_kwargs,
                make_dispatcher_factory,
                make_simulator,
            )
            from .runtime.trial import trial_run_kwargs, trial_trace

            if config.engine == "reference":
                raise ValueError(
                    "observer= requires an engine with observation support; "
                    "the reference oracle loop has none (use optimized, "
                    "vector or audited)"
                )
            simulator = make_simulator(
                config.engine,
                setup.cluster(config.replication_degree),
                setup.videos(),
                layout,
                dispatcher_factory=make_dispatcher_factory(config.dispatcher),
                backbone_mbps=config.backbone_mbps,
            )
            import time

            start = time.perf_counter()
            with timed(sink, "simulate"):
                results = [
                    simulator.run(
                        trial_trace(spec),
                        horizon_min=spec.resolved_horizon_min(),
                        observer=observer,
                        **trial_run_kwargs(spec),
                        **engine_run_kwargs(config.engine),
                    )
                    for spec in trials
                ]
            for result in results:
                report.record_simulated(result)
            report.record_batch(time.perf_counter() - start)
        else:
            results = runner.run_trials(trials)

        if config.shards > 1:
            from .cluster_sim.sharding import merge_results

            # Per-shard phase timings: shard k's wall time summed over all
            # runs, so the RunReport/observer shows where the shard budget
            # went even when the shards ran in a worker pool.
            for k in range(config.shards):
                sink.record_phase(
                    f"shard{k}",
                    sum(
                        results[r * config.shards + k].wall_time_sec
                        for r in range(num_runs)
                    ),
                )
            with timed(sink, "merge"):
                results = [
                    merge_results(
                        results[r * config.shards : (r + 1) * config.shards]
                    )
                    for r in range(num_runs)
                ]

    if observer is not None:
        observer.fold_into_report(report)

    return PipelineResult(
        config=config,
        layout=layout,
        replication=replication,
        refinement=refinement,
        sa_result=sa_result,
        results=results,
        rejection=summarize([r.rejection_rate for r in results]),
        imbalance_percent=summarize([r.load_imbalance_percent() for r in results]),
        report=report,
    )

"""Structured event tracing: cheap in-memory events, JSONL in/out.

A :class:`Tracer` records dict-shaped events (``{"kind": ..., "t": ...,
...fields}``) in arrival order.  Producers append; nothing is formatted or
flushed until :meth:`write_jsonl` — recording a sampled simulator event is
one dict build plus one list append.  A hard event cap keeps a runaway
producer from exhausting memory: events beyond the cap are counted in
``num_dropped`` instead of silently vanishing.

Spans (:meth:`span`) time a phase and emit one ``kind="span"`` event with
the measured ``wall_sec`` on exit.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["Tracer", "read_jsonl"]


class Tracer:
    """Append-only structured event recorder with a JSONL serialization."""

    def __init__(self, *, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = int(max_events)
        self.events: list[dict] = []
        self.num_dropped = 0

    # ------------------------------------------------------------------
    def emit(self, kind: str, *, t: float | None = None, **fields) -> None:
        """Record one event; ``t`` is the event's domain time (sim minutes)."""
        if len(self.events) >= self.max_events:
            self.num_dropped += 1
            return
        event = {"kind": kind}
        if t is not None:
            event["t"] = t
        if fields:
            event.update(fields)
        self.events.append(event)

    @contextmanager
    def span(self, name: str, **fields):
        """Time a with-block; emits ``kind="span"`` with ``wall_sec``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                "span",
                name=name,
                wall_sec=time.perf_counter() - start,
                **fields,
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["kind"] == kind]

    def write_jsonl(self, path: "str | Path") -> int:
        """Write one JSON object per line; returns the event count written."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(events={len(self.events)}, dropped={self.num_dropped})"


def read_jsonl(path: "str | Path") -> list[dict]:
    """Read a JSONL event file back into a list of dicts (round-trip of
    :meth:`Tracer.write_jsonl`; blank lines are ignored)."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events

"""Metric primitives: counters, gauges, fixed-bucket histograms, series.

The registry is the numeric half of the observability layer (the
:class:`~repro.observe.tracer.Tracer` is the structured-event half).  All
primitives are plain Python — no numpy, no locks, no background threads —
so they are safe to use from the simulator hot loop's *cold* branches and
cost nothing when the subsystem is disabled.

Naming convention: dotted lowercase paths grouped by subsystem
(``sim.requests``, ``sa.steps``, ``dynamic.replicas_copied``), mirroring
the canonical result-field schema in DESIGN.md.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
]

_INF = float("inf")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are strictly increasing inclusive upper edges; one overflow
    bucket collects values above the last edge.  ``observe`` is O(log B)
    (bisect over a tuple), so per-sample cost is flat regardless of how
    many samples have been folded in.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket = overflow
        self.count = 0
        self.sum = 0.0
        self.min = _INF
        self.max = -_INF

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Fold a batch of values in one call (one bisect per value).

        Equivalent to calling :meth:`observe` per value but with the
        bookkeeping hoisted; :meth:`Observer.record_simulation` folds one
        batch per sample instant, so this is the per-run fast path.
        """
        counts = self.counts
        bounds = self.bounds
        total = 0.0
        n = 0
        lo, hi = self.min, self.max
        for value in values:
            value = float(value)
            counts[bisect_left(bounds, value)] += 1
            total += value
            n += 1
            if value < lo:
                lo = value
            if value > hi:
                hi = value
        self.count += n
        self.sum += total
        self.min = lo
        self.max = hi

    def merge_bucket_counts(
        self, bucket_counts, n: int, total: float, lo: float, hi: float
    ) -> None:
        """Fold pre-bucketed observations (the vectorized fast path).

        ``bucket_counts`` must have one entry per bucket (overflow last),
        bucketed with bisect-left semantics over :attr:`bounds`;
        ``n``/``total``/``lo``/``hi`` summarize the same observations.
        :meth:`Observer.record_simulation` buckets a whole run's samples
        with numpy and folds them here in one call.
        """
        counts = self.counts
        if len(bucket_counts) != len(counts):
            raise ValueError(
                f"histogram {self.name!r} expects {len(counts)} bucket "
                f"counts, got {len(bucket_counts)}"
            )
        if n < 0:
            raise ValueError("observation count cannot be negative")
        if not n:
            return
        for index, bucket_count in enumerate(bucket_counts):
            counts[index] += bucket_count
        self.count += n
        self.sum += float(total)
        if lo < self.min:
            self.min = float(lo)
        if hi > self.max:
            self.max = float(hi)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the upper edge of the bucket that
        contains the q-th sample (``max`` for the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.4g})"


class TimeSeries:
    """Append-only table of periodic samples (one row per sample instant).

    ``columns`` name the row entries; every :meth:`append` must supply one
    value per column.  Rows are plain tuples — cheap to append at sample
    boundaries, trivially JSON-serializable.
    """

    __slots__ = ("name", "columns", "rows")

    def __init__(self, name: str, columns: tuple[str, ...]) -> None:
        if not columns:
            raise ValueError("time series needs at least one column")
        self.name = name
        self.columns = tuple(str(c) for c in columns)
        self.rows: list[tuple] = []

    def append(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"series {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        self.rows.append(values)

    def extend(self, rows) -> None:
        """Append many pre-built rows at once (the bulk fast path).

        Each row must be a tuple with one value per column; rows produced
        by ``zip()`` over column lists qualify and append at C speed.
        """
        rows = list(rows)
        width = len(self.columns)
        if any(len(row) != width for row in rows):
            raise ValueError(
                f"series {self.name!r} expects rows of {width} values"
            )
        self.rows.extend(rows)

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def to_dict(self) -> dict:
        return {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeSeries({self.name}, rows={len(self.rows)})"


class MetricsRegistry:
    """Named metric store: get-or-create counters/gauges/histograms/series.

    Re-requesting a name returns the existing instrument; requesting an
    existing name as a *different* kind (or a histogram/series with a
    different shape) raises, so two subsystems cannot silently fight over
    one metric.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.series: dict[str, TimeSeries] = {}

    # ------------------------------------------------------------------
    def _check_unique(self, name: str, kind: dict) -> None:
        for store in (self.counters, self.gauges, self.histograms, self.series):
            if store is not kind and name in store:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            self._check_unique(name, self.counters)
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            self._check_unique(name, self.gauges)
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: tuple[float, ...]) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            self._check_unique(name, self.histograms)
            instrument = self.histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(f"histogram {name!r} re-registered with different bounds")
        return instrument

    def timeseries(self, name: str, columns: tuple[str, ...]) -> TimeSeries:
        instrument = self.series.get(name)
        if instrument is None:
            self._check_unique(name, self.series)
            instrument = self.series[name] = TimeSeries(name, columns)
        elif instrument.columns != tuple(str(c) for c in columns):
            raise ValueError(f"series {name!r} re-registered with different columns")
        return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view of every instrument (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
            "series": {n: s.to_dict() for n, s in sorted(self.series.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)}, "
            f"series={len(self.series)})"
        )

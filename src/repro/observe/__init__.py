"""Unified observability layer: metrics, tracing, profiling (system S26).

Three zero-dependency building blocks behind one facade:

* :class:`MetricsRegistry` — counters, gauges, fixed-bucket
  :class:`Histogram`\\ s and periodic :class:`TimeSeries` samples;
* :class:`Tracer` — structured events (spans, sampled simulator
  arrivals/departures, SA temperature levels, migration plans) with JSONL
  round-trip via :meth:`Tracer.write_jsonl` / :func:`read_jsonl`;
* :func:`timed` — phase profiling folded into any sink exposing
  ``record_phase`` (``RunReport``, :class:`Observer`) or a plain dict.

:class:`Observer` bundles all three and is what the instrumented
subsystems accept through their optional ``observer=`` parameter
(simulator runs, annealing runs, dynamic-replication epochs, the parallel
runner).  With ``observer=None`` (the default) every instrumented hot
path is unchanged within the ``BENCH_hotpaths.json`` ``observe`` gates.

Quick start::

    from repro.observe import Observer, ObserverConfig

    obs = Observer(ObserverConfig(sample_interval_min=1.0, trace_events=True))
    simulator.run(trace, observer=obs)
    obs.export_jsonl("trace.jsonl")        # python -m repro observe-report
"""

from .observer import Observer, ObserverConfig
from .profile import timed
from .registry import Counter, Gauge, Histogram, MetricsRegistry, TimeSeries
from .report import load_trace, render_trace_report
from .tracer import Tracer, read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "ObserverConfig",
    "TimeSeries",
    "Tracer",
    "load_trace",
    "read_jsonl",
    "render_trace_report",
    "timed",
]

"""The observability facade the instrumented subsystems talk to.

One :class:`Observer` bundles a :class:`MetricsRegistry`, a
:class:`Tracer` and a phase profiler behind the typed hooks each subsystem
calls through its optional ``observer=`` parameter:

* ``VoDClusterSimulator.run(..., observer=obs)`` — per-server load/stream
  timelines sampled every ``sample_interval_min`` simulated minutes,
  sampled arrival/departure trace events, counter/gauge rollups;
* ``SimulatedAnnealer.run(..., observer=obs)`` — per-temperature-level
  acceptance traces and step counters;
* ``DynamicReplicationController(..., observer=obs)`` — per-epoch
  migration-plan events and copy counters;
* ``ParallelRunner(..., observer=obs)`` — batch counters plus per-phase
  wall time (also folded into the :class:`repro.runtime.RunReport`).

The instrumented modules never import this package — the observer is
duck-typed — so :mod:`repro.cluster_sim`, :mod:`repro.annealing` and
:mod:`repro.dynamic` stay import-independent of the observability layer,
and the ``observer=None`` default keeps their hot paths untouched.

Simulation folds are *deferred*: :meth:`Observer.record_simulation` only
parks the run's raw sample buffers, and the numpy aggregation into
histograms/time series runs once on first read (any access to
:attr:`Observer.registry` or :attr:`Observer.tracer` flushes).  Recording
stays off the simulator's critical path — the metrics-on budget in
``BENCH_hotpaths.json`` gates the recording cost; the fold cost is
reported separately as ``fold_wall_sec``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .registry import MetricsRegistry
from .tracer import Tracer

__all__ = ["Observer", "ObserverConfig"]

#: Default utilization histogram edges: deciles plus a saturation bucket.
_UTILIZATION_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)

#: JSONL schema version written by :meth:`Observer.export_jsonl`.
_TRACE_SCHEMA = 1


@dataclass(frozen=True)
class ObserverConfig:
    """Tuning knobs for what (and how densely) an observer records.

    Attributes
    ----------
    sample_interval_min:
        Simulated minutes between utilization-timeline samples; ``0``
        disables periodic sampling.
    trace_events:
        Record sampled simulator arrival/departure events in the tracer.
    trace_event_every:
        Keep every N-th arrival and departure when ``trace_events`` is on
        (1 = every event; raise for long traces).
    trace_sa_levels / trace_migrations:
        Emit per-level annealing events / per-epoch migration events.
    max_trace_events:
        Tracer hard cap; events beyond it are counted as dropped.
    """

    sample_interval_min: float = 1.0
    trace_events: bool = False
    trace_event_every: int = 100
    trace_sa_levels: bool = True
    trace_migrations: bool = True
    max_trace_events: int = 1_000_000

    def __post_init__(self) -> None:
        if self.sample_interval_min < 0:
            raise ValueError("sample_interval_min must be >= 0")
        if self.trace_event_every < 1:
            raise ValueError("trace_event_every must be >= 1")


class Observer:
    """Bundle of metrics + tracing + profiling with subsystem hooks."""

    def __init__(
        self,
        config: ObserverConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config if config is not None else ObserverConfig()
        self._registry = registry if registry is not None else MetricsRegistry()
        self._tracer = (
            tracer
            if tracer is not None
            else Tracer(max_events=self.config.max_trace_events)
        )
        self.phase_seconds: dict[str, float] = {}
        self._sim_runs = 0
        self._pending_sims: list[tuple] = []

    # ------------------------------------------------------------------
    # Deferred-fold plumbing: any read flushes parked simulation runs.
    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The metric store (flushes pending simulation folds first)."""
        if self._pending_sims:
            self._flush_pending()
        return self._registry

    @property
    def tracer(self) -> Tracer:
        """The event tracer (flushes pending simulation folds first)."""
        if self._pending_sims:
            self._flush_pending()
        return self._tracer

    def _flush_pending(self) -> None:
        pending, self._pending_sims = self._pending_sims, []
        for payload in pending:
            self._fold_simulation(*payload)

    # ------------------------------------------------------------------
    # Hot-path configuration reads (the simulator hoists these into locals)
    # ------------------------------------------------------------------
    @property
    def sample_interval_min(self) -> float:
        return self.config.sample_interval_min

    @property
    def trace_event_every(self) -> int:
        """0 when event tracing is off, else the keep-every-N stride."""
        return self.config.trace_event_every if self.config.trace_events else 0

    # ------------------------------------------------------------------
    # Simulator hook
    # ------------------------------------------------------------------
    def record_simulation(
        self,
        *,
        samples: list,
        traced_events: list,
        result,
        server_bandwidth_mbps,
    ) -> None:
        """Park one finished simulator run for deferred folding.

        ``samples`` rows are ``(t, used_mbps_list, active_streams_list,
        num_requests, num_rejected, num_redirected, backbone_mbps)``
        accumulated at sample boundaries; ``traced_events`` are the
        sampled ``("arrival", t, video, admitted)`` /
        ``("departure", t, server)`` tuples.  All inputs are per-run
        snapshots the simulator never touches again, so nothing is copied
        here — the numpy fold (:meth:`_fold_simulation`) runs on first
        read of :attr:`registry`/:attr:`tracer`, keeping this call O(1)
        on the simulator's critical path.
        """
        self._pending_sims.append(
            (self._sim_runs, samples, traced_events, result, server_bandwidth_mbps)
        )
        self._sim_runs += 1

    def _fold_simulation(
        self, run: int, samples: list, traced_events: list, result,
        server_bandwidth_mbps,
    ) -> None:
        """Fold one parked simulator run into the registry and tracer."""
        registry = self._registry

        registry.counter("sim.runs").inc()
        registry.counter("sim.requests").inc(result.num_requests)
        registry.counter("sim.rejected").inc(result.num_rejected)
        registry.counter("sim.redirected").inc(result.num_redirected)
        registry.counter("sim.truncated").inc(result.num_truncated)
        registry.counter("sim.events").inc(result.num_events)
        registry.counter("sim.streams_dropped").inc(result.streams_dropped)
        if result.num_failures or result.streams_dropped:
            # Chaos availability counters (absent on failure-free runs so
            # snapshots stay byte-identical with chaos machinery attached).
            registry.counter("sim.failures").inc(result.num_failures)
            registry.counter("sim.recoveries").inc(result.num_recoveries)
            registry.counter("sim.retries").inc(result.num_retries)
            registry.counter("sim.failovers").inc(result.num_failovers)
            registry.counter("sim.lost_to_failure").inc(
                result.num_lost_to_failure
            )
            registry.counter("sim.rereplicated").inc(result.num_rereplicated)
            registry.gauge("sim.last_mttr_min").set(
                result.mean_time_to_recovery_min
            )
        registry.gauge("sim.last_horizon_min").set(result.horizon_min)
        registry.gauge("sim.last_rejection_rate").set(result.rejection_rate)
        registry.gauge("sim.last_imbalance_pct").set(
            result.load_imbalance_percent()
        )

        bandwidth = [float(b) for b in server_bandwidth_mbps]
        num_servers = len(bandwidth)
        utilization = registry.histogram(
            "sim.server_utilization", _UTILIZATION_BUCKETS
        )
        load_series = registry.timeseries(
            "sim.server_load_mbps",
            ("run", "t") + tuple(f"s{k}" for k in range(num_servers)),
        )
        stream_series = registry.timeseries(
            "sim.server_streams",
            ("run", "t") + tuple(f"s{k}" for k in range(num_servers)),
        )
        rate_series = registry.timeseries(
            "sim.rates",
            (
                "run",
                "t",
                "rejection_rate",
                "redirection_rate",
                "imbalance_pct",
                "backbone_mbps",
            ),
        )
        # Vectorized fold: the whole run's samples in a handful of numpy
        # passes plus C-speed row construction (zip over column lists).
        # Runs at flush time, not on the simulator's critical path.
        if samples and num_servers:
            num_samples = len(samples)
            t_col = [s[0] for s in samples]
            used = np.asarray([s[1] for s in samples], dtype=np.float64)
            streams = [s[2] for s in samples]
            run_col = [run] * num_samples

            load_series.extend(zip(run_col, t_col, *used.T.tolist()))
            stream_series.extend(zip(run_col, t_col, *zip(*streams)))

            ratios = used / np.asarray(bandwidth, dtype=np.float64)
            flat = ratios.ravel()
            # bisect_left semantics, matching Histogram.observe.
            bucket_counts = np.bincount(
                np.searchsorted(utilization.bounds, flat, side="left"),
                minlength=len(utilization.counts),
            )
            utilization.merge_bucket_counts(
                bucket_counts.tolist(),
                flat.size,
                float(flat.sum()),
                float(flat.min()),
                float(flat.max()),
            )

            mean_bandwidth = sum(bandwidth) / num_servers
            mean_load = used.mean(axis=1)
            imbalance = (
                np.abs(used - mean_load[:, None]).max(axis=1)
                / mean_bandwidth
                * 100.0
            )
            requests = np.asarray([s[3] for s in samples], dtype=np.float64)
            safe_requests = np.where(requests > 0, requests, 1.0)
            rejected = np.asarray([s[4] for s in samples], dtype=np.float64)
            redirected = np.asarray([s[5] for s in samples], dtype=np.float64)
            backbone_col = [s[6] for s in samples]
            rate_series.extend(
                zip(
                    run_col,
                    t_col,
                    (rejected / safe_requests).tolist(),
                    (redirected / safe_requests).tolist(),
                    imbalance.tolist(),
                    backbone_col,
                )
            )

        tracer = self._tracer
        for event in traced_events:
            if event[0] == "arrival":
                tracer.emit(
                    "arrival",
                    t=event[1],
                    run=run,
                    video=event[2],
                    admitted=event[3],
                )
            else:
                tracer.emit("departure", t=event[1], run=run, server=event[2])
        tracer.emit(
            "sim.run",
            t=result.horizon_min,
            run=run,
            requests=result.num_requests,
            rejected=result.num_rejected,
            redirected=result.num_redirected,
            events=result.num_events,
            rejection_rate=result.rejection_rate,
            wall_sec=result.wall_time_sec,
        )

    # ------------------------------------------------------------------
    # Annealing hooks
    # ------------------------------------------------------------------
    def sa_level(
        self,
        *,
        level: int,
        temperature: float,
        cost: float,
        best_cost: float,
        steps: int,
        accepted: int,
    ) -> None:
        """Record one temperature level of a Metropolis run."""
        self.registry.counter("sa.steps").inc(steps)
        self.registry.counter("sa.accepted").inc(accepted)
        self.registry.timeseries(
            "sa.levels",
            ("level", "temperature", "cost", "best_cost", "acceptance_rate"),
        ).append(
            level,
            temperature,
            cost,
            best_cost,
            accepted / steps if steps else 0.0,
        )
        if self.config.trace_sa_levels:
            self.tracer.emit(
                "sa.level",
                level=level,
                temperature=temperature,
                cost=cost,
                best_cost=best_cost,
                acceptance_rate=accepted / steps if steps else 0.0,
            )

    def sa_run_finished(self, result) -> None:
        """Fold one finished annealing run (an ``AnnealingResult``)."""
        self.registry.counter("sa.runs").inc()
        self.registry.gauge("sa.last_best_cost").set(result.best_cost)
        self.tracer.emit(
            "sa.run",
            levels=result.levels,
            steps=result.steps,
            accepted=result.accepted,
            best_cost=result.best_cost,
            final_cost=result.final_cost,
            wall_sec=result.wall_time_sec,
        )

    # ------------------------------------------------------------------
    # Dynamic-replication hook
    # ------------------------------------------------------------------
    def migration_event(self, *, epoch: int, plan) -> None:
        """Record one epoch's migration plan (a ``MigrationPlan``)."""
        self.registry.counter("dynamic.epochs").inc()
        if plan.executed:
            self.registry.counter("dynamic.replicas_copied").inc(
                plan.replicas_copied
            )
        else:
            self.registry.counter("dynamic.skipped_epochs").inc()
        if self.config.trace_migrations:
            self.tracer.emit(
                "migration",
                epoch=epoch,
                executed=plan.executed,
                replicas_copied=plan.replicas_copied,
                proposed_copies=plan.proposed_copies,
                added=len(plan.added),
                removed=len(plan.removed),
            )

    # ------------------------------------------------------------------
    # Serving-control-plane hook
    # ------------------------------------------------------------------
    def serving_epoch(self, *, epoch: int, snapshot) -> None:
        """Record one control-plane epoch (an ``EpochSnapshot``)."""
        registry = self.registry
        registry.counter("serving.epochs").inc()
        registry.counter("serving.requests").inc(snapshot.num_requests)
        registry.counter("serving.rejected").inc(snapshot.num_rejected)
        if snapshot.migration_executed:
            registry.counter("serving.replans").inc()
            registry.counter("serving.replicas_copied").inc(
                snapshot.replicas_copied
            )
        if snapshot.elasticity_action > 0:
            registry.counter("serving.servers_added").inc()
        elif snapshot.elasticity_action < 0:
            registry.counter("serving.servers_drained").inc()
        if snapshot.slo_breached:
            registry.counter("serving.slo_breaches").inc()
        registry.gauge("serving.num_servers").set(snapshot.num_servers)
        registry.gauge("serving.rejection_rate").set(snapshot.rejection_rate)
        self.tracer.emit(
            "serving.epoch",
            epoch=epoch,
            num_servers=snapshot.num_servers,
            requests=snapshot.num_requests,
            rejection_rate=snapshot.rejection_rate,
            drift_score=snapshot.drift_score,
            replanned=snapshot.replanned,
            migration_executed=snapshot.migration_executed,
            replicas_copied=snapshot.replicas_copied,
            elasticity_action=snapshot.elasticity_action,
            slo_breached=snapshot.slo_breached,
        )

    # ------------------------------------------------------------------
    # Runner hook
    # ------------------------------------------------------------------
    def runner_batch(
        self, *, num_trials: int, num_cache_hits: int, wall_sec: float
    ) -> None:
        """Record one engine batch (cache hits + simulations)."""
        self.registry.counter("runner.batches").inc()
        self.registry.counter("runner.trials").inc(num_trials)
        self.registry.counter("runner.cache_hits").inc(num_cache_hits)
        self.tracer.emit(
            "runner.batch",
            trials=num_trials,
            cache_hits=num_cache_hits,
            wall_sec=wall_sec,
        )

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def record_phase(self, phase: str, seconds: float) -> None:
        """Accumulate wall time for a named phase (the ``timed()`` sink)."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    def timed(self, phase: str):
        """``with observer.timed("placement"): ...`` — see :func:`timed`."""
        from .profile import timed

        return timed(self, phase)

    def fold_into_report(self, report) -> None:
        """Copy accumulated phase times into a ``RunReport``."""
        for phase, seconds in self.phase_seconds.items():
            report.record_phase(phase, seconds)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data view: metrics + phases + trace summary."""
        return {
            "metrics": self.registry.snapshot(),
            "phase_seconds": dict(self.phase_seconds),
            "trace": {
                "events": len(self.tracer.events),
                "dropped": self.tracer.num_dropped,
            },
        }

    def export_jsonl(self, path: "str | Path") -> int:
        """Write the full observation as one JSONL file; returns line count.

        Layout: a ``meta`` header, every trace event, one ``series`` line
        per time series (columns + rows), and a final ``metrics`` line with
        the counter/gauge/histogram snapshot.  ``observe-report`` (the
        ``python -m repro`` subcommand) renders this file.
        """
        import json

        path = Path(path)
        snapshot = self.registry.snapshot()
        lines = 0
        with path.open("w", encoding="utf-8") as handle:
            def write(obj) -> None:
                nonlocal lines
                handle.write(json.dumps(obj, separators=(",", ":")))
                handle.write("\n")
                lines += 1

            write(
                {
                    "kind": "meta",
                    "schema": _TRACE_SCHEMA,
                    "events": len(self.tracer.events),
                    "dropped_events": self.tracer.num_dropped,
                }
            )
            for event in self.tracer.events:
                write(event)
            for name, series in sorted(snapshot["series"].items()):
                write({"kind": "series", "name": name, **series})
            write(
                {
                    "kind": "metrics",
                    "counters": snapshot["counters"],
                    "gauges": snapshot["gauges"],
                    "histograms": snapshot["histograms"],
                    "phase_seconds": dict(self.phase_seconds),
                }
            )
        return lines

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Observer(runs={self._sim_runs}, "
            f"pending={len(self._pending_sims)}, {self._registry!r}, "
            f"{self._tracer!r})"
        )

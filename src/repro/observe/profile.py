"""Phase profiling: fold wall time per named phase into any report.

:func:`timed` is the single profiling hook the rest of the codebase uses::

    with timed(report, "replication"):
        replication = replicator.replicate(...)

The sink is duck-typed: anything exposing ``record_phase(name, seconds)``
(:class:`repro.runtime.RunReport`, :class:`repro.observe.Observer`) or a
plain mutable mapping accumulating ``{phase: seconds}``.  Nesting and
repetition accumulate — timing the same phase twice sums the wall time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["timed"]


@contextmanager
def timed(sink, phase: str):
    """Time the with-block and fold the wall seconds into *sink*.

    ``sink=None`` disables timing entirely (the block still runs), so call
    sites can write ``with timed(observer, ...)`` without a branch.
    """
    if sink is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        record = getattr(sink, "record_phase", None)
        if record is not None:
            record(phase, elapsed)
        else:
            sink[phase] = sink.get(phase, 0.0) + elapsed

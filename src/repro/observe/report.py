"""Render an exported observation (trace JSONL) as a human-readable report.

Consumes the file written by :meth:`Observer.export_jsonl` (or any JSONL
event stream) and prints: event counts by kind, the metrics snapshot,
phase wall times, and — when the per-server load series is present — an
ASCII utilization timeline.  This is the ``observe-report`` subcommand of
``python -m repro``.
"""

from __future__ import annotations

from .tracer import read_jsonl

__all__ = ["render_trace_report", "load_trace"]


def load_trace(path) -> list[dict]:
    """Read a trace JSONL file (alias of :func:`read_jsonl`)."""
    return read_jsonl(path)


def _format_count_table(counts: dict[str, int]) -> list[str]:
    width = max((len(k) for k in counts), default=4)
    return [f"  {name:<{width}}  {value:>10,}" for name, value in counts.items()]


def _series_chart(series: dict, *, width: int = 64, height: int = 12) -> str:
    """Chart one exported per-server series (first run only)."""
    from ..analysis.plots import ascii_chart

    columns = series["columns"]
    rows = series["rows"]
    if "run" in columns:
        run_index = columns.index("run")
        first = rows[0][run_index]
        rows = [r for r in rows if r[run_index] == first]
    t_index = columns.index("t")
    xs = [row[t_index] for row in rows]
    if len(xs) < 2:
        return "  (fewer than 2 samples; no chart)"
    value_columns = [
        (i, c) for i, c in enumerate(columns) if c not in ("run", "t")
    ]
    # ascii_chart supports at most 8 series; fold extras into the last.
    value_columns = value_columns[:8]
    data = {c: [row[i] for row in rows] for i, c in value_columns}
    return ascii_chart(
        xs, data, width=width, height=height,
        title=series.get("name", "series"), x_label="t (min)",
    )


def render_trace_report(events: list[dict], *, charts: bool = False) -> str:
    """Build the observe-report text from parsed JSONL events."""
    if not events:
        return "empty trace (no events)"

    counts: dict[str, int] = {}
    spans: dict[str, float] = {}
    series: dict[str, dict] = {}
    metrics: dict | None = None
    meta: dict | None = None
    for event in events:
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "meta":
            meta = event
        elif kind == "metrics":
            metrics = event
        elif kind == "series":
            series[event.get("name", f"series{len(series)}")] = event
        elif kind == "span":
            name = event.get("name", "?")
            spans[name] = spans.get(name, 0.0) + float(event.get("wall_sec", 0.0))

    lines = ["observation report"]
    if meta is not None:
        dropped = meta.get("dropped_events", 0)
        lines.append(
            f"  schema {meta.get('schema', '?')}  "
            f"{meta.get('events', 0):,} trace events"
            + (f"  ({dropped:,} dropped at cap)" if dropped else "")
        )
    lines.append("")
    lines.append("events by kind:")
    lines.extend(_format_count_table(dict(sorted(counts.items()))))

    if metrics is not None:
        counters = metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append("counters:")
            lines.extend(_format_count_table(counters))
        gauges = metrics.get("gauges", {})
        if gauges:
            lines.append("")
            lines.append("gauges:")
            width = max(len(k) for k in gauges)
            lines.extend(
                f"  {name:<{width}}  {value:>12.4f}"
                for name, value in gauges.items()
            )
        histograms = metrics.get("histograms", {})
        if histograms:
            lines.append("")
            lines.append("histograms:")
            for name, hist in histograms.items():
                lines.append(
                    f"  {name}: n={hist['count']:,} mean={hist['mean']:.4f} "
                    f"min={hist['min']} max={hist['max']}"
                )
        phases = metrics.get("phase_seconds", {})
        if phases:
            lines.append("")
            lines.append("phase wall time:")
            width = max(len(k) for k in phases)
            lines.extend(
                f"  {name:<{width}}  {seconds:>9.3f}s"
                for name, seconds in phases.items()
            )

    if spans:
        lines.append("")
        lines.append("spans (summed wall time):")
        width = max(len(k) for k in spans)
        lines.extend(
            f"  {name:<{width}}  {seconds:>9.3f}s"
            for name, seconds in sorted(spans.items())
        )

    if series:
        lines.append("")
        lines.append(
            "series: "
            + ", ".join(
                f"{name} ({len(s.get('rows', []))} rows)"
                for name, s in sorted(series.items())
            )
        )
        if charts and "sim.server_load_mbps" in series:
            lines.append("")
            lines.append(_series_chart(series["sim.server_load_mbps"]))

    return "\n".join(lines)

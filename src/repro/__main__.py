"""The consolidated command-line entry point: ``python -m repro``.

Subcommands::

    python -m repro experiments fig4 --quick      # the figure harness
    python -m repro fuzz --trials 100             # differential fuzzing
    python -m repro bench --smoke --only vector   # hot-path microbenchmarks
    python -m repro pipeline --theta 0.75 --rate 30 --observe
    python -m repro pipeline --engine vector       # numpy event-batch core
    python -m repro pipeline --shards 4 --jobs 4   # sharded scale-out
    python -m repro pipeline --surrogate --quick   # analytical screen + top-K DES
    python -m repro serve --epochs 12 --elastic --slo 0.05 --drift release:3
    python -m repro serve --engine vector --shards 2 --jobs 2
    python -m repro observe-report trace.jsonl --chart

``experiments``, ``fuzz`` and ``bench`` delegate verbatim to the
underlying drivers (``python -m repro.experiments`` /
``python -m repro.verify.fuzz`` / ``benchmarks/bench_hotpaths.py``),
which keep working unchanged.  ``pipeline`` runs the
:func:`repro.pipeline.solve` facade for one design point, optionally
instrumented; ``observe-report`` renders a trace JSONL written with
``--trace-out`` (or :meth:`repro.observe.Observer.export_jsonl`).
``--engine``, ``--shards``, ``--jobs`` and ``--observe`` mean the same
thing on ``pipeline`` and ``serve``.
"""

from __future__ import annotations

import argparse
import sys


def _shared_sim_flags(parser) -> None:
    """Flags whose meaning is identical across ``pipeline`` and ``serve``."""
    parser.add_argument(
        "--engine",
        default="optimized",
        choices=("optimized", "vector", "reference", "audited"),
        help=(
            "lockstep simulation engine: optimized (tuple-heap loop, "
            "default), vector (numpy event-batch core), reference "
            "(readable oracle), audited (optimized + invariant auditors); "
            "all engines produce identical results"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "split each simulated run into K deterministic arrival-stream "
            "shards and merge the per-shard results (weak scaling; "
            "1 = unsharded)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation stage (1 = in-process)",
    )
    parser.add_argument(
        "--observe",
        action="store_true",
        help="instrument the run (metrics + traces); implied by --trace-out",
    )


def _pipeline_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "pipeline",
        help="run the replicate->place->simulate facade for one design point",
    )
    parser.add_argument("--theta", type=float, default=0.75, help="Zipf skew")
    parser.add_argument(
        "--degree", type=float, default=1.2, help="replication degree"
    )
    parser.add_argument(
        "--rate", type=float, default=30.0, help="arrival rate (requests/min)"
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="simulation runs (default: setup's)"
    )
    from .pipeline import PLACERS, REPLICATORS

    parser.add_argument(
        "--replicator",
        default="zipf",
        choices=tuple(REPLICATORS),
    )
    parser.add_argument(
        "--placer", default="slf", choices=tuple(PLACERS)
    )
    parser.add_argument(
        "--dispatcher",
        default="static_rr",
        choices=("static_rr", "least_loaded", "first_fit"),
    )
    parser.add_argument(
        "--backbone-mbps", type=float, default=0.0, help="redirection backbone"
    )
    parser.add_argument(
        "--failures",
        default=None,
        metavar="SPEC",
        help=(
            "chaos recipe 'kind:key=value,...' — kinds: single "
            "(t,server,down), random (mtbf,mttr), correlated "
            "(groups,mtbf,mttr), mtbf (mtbf,mttr); e.g. "
            "'single:t=30,server=0,down=15'"
        ),
    )
    parser.add_argument(
        "--failover",
        action="store_true",
        help="failover dispatch with retry/backoff for failure-hit requests",
    )
    parser.add_argument(
        "--max-retries", type=int, default=3, help="failover retry budget"
    )
    parser.add_argument(
        "--rereplicate",
        action="store_true",
        help="restore lost replicas on repair over the migration network",
    )
    parser.add_argument(
        "--migration-mbps",
        type=float,
        default=1000.0,
        help="re-replication bandwidth cap",
    )
    _shared_sim_flags(parser)
    parser.add_argument(
        "--refine", action="store_true", help="hill-climb the placement"
    )
    parser.add_argument(
        "--anneal", action="store_true", help="SA over scalable bit rates"
    )
    parser.add_argument(
        "--surrogate",
        action="store_true",
        help=(
            "surrogate-guided sweep: screen candidate layouts with the "
            "analytical Erlang fixed point, DES-simulate only the top-K"
        ),
    )
    parser.add_argument(
        "--screen-candidates",
        type=int,
        default=24,
        help="candidate layouts scored by the surrogate screen",
    )
    parser.add_argument(
        "--top-k",
        type=int,
        default=3,
        help="screen survivors that get DES confirmation",
    )
    parser.add_argument(
        "--screen-seed",
        type=int,
        default=0,
        help="seed for the screen's random candidate layouts",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced run count (3)"
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        help="simulated minutes between utilization samples",
    )
    parser.add_argument(
        "--trace-events",
        action="store_true",
        help="record sampled arrival/departure events in the trace",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the observation as JSONL (implies --observe)",
    )


def _serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the online serving control plane (epoch loop with drift "
        "re-optimization and SLO elasticity)",
    )
    parser.add_argument(
        "--epochs", type=int, default=8, help="epochs to serve"
    )
    parser.add_argument(
        "--epoch-minutes",
        type=float,
        default=None,
        help="epoch length (default: the setup's peak window)",
    )
    parser.add_argument("--theta", type=float, default=0.75, help="Zipf skew")
    parser.add_argument(
        "--degree", type=float, default=1.2, help="replication degree"
    )
    parser.add_argument(
        "--base-rate", type=float, default=15.0, help="off-peak requests/min"
    )
    parser.add_argument(
        "--peak-rate", type=float, default=30.0, help="diurnal peak requests/min"
    )
    parser.add_argument(
        "--day-epochs", type=int, default=4, help="epochs per diurnal day"
    )
    parser.add_argument(
        "--flash-epochs",
        default=None,
        metavar="E1,E2,...",
        help="epochs hit by a flash-crowd spike (comma-separated)",
    )
    parser.add_argument(
        "--flash-multiplier",
        type=float,
        default=2.0,
        help="rate multiplier during a flash crowd",
    )
    parser.add_argument(
        "--drift",
        default=None,
        metavar="SPEC",
        help="popularity drift: none | rankswap:K | release:K | lognormal:S",
    )
    parser.add_argument(
        "--replan",
        default="drift",
        choices=("drift", "always", "never"),
        help="re-planning policy (drift = on detector trigger)",
    )
    parser.add_argument(
        "--drift-threshold",
        type=float,
        default=0.10,
        help="total-variation drift threshold for replan=drift",
    )
    parser.add_argument(
        "--move-budget",
        type=int,
        default=None,
        help="max replicas copied per re-plan (default: unlimited)",
    )
    parser.add_argument(
        "--screen",
        action="store_true",
        help="surrogate-screen each migration against the incumbent",
    )
    parser.add_argument(
        "--anneal-polish",
        action="store_true",
        help="warm-start SA polish of each migrated layout",
    )
    parser.add_argument(
        "--elastic",
        action="store_true",
        help="add/drain servers on sustained SLO breach/calm",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=0.05,
        help="SLO rejection-rate target",
    )
    parser.add_argument(
        "--max-servers",
        type=int,
        default=None,
        help="elastic ceiling (default: 2x the setup)",
    )
    parser.add_argument(
        "--dispatcher",
        default="static_rr",
        choices=("static_rr", "least_loaded", "first_fit"),
    )
    parser.add_argument(
        "--backbone-mbps", type=float, default=0.0, help="redirection backbone"
    )
    parser.add_argument(
        "--failures",
        default=None,
        metavar="SPEC",
        help="per-epoch chaos recipe (same grammar as pipeline --failures)",
    )
    parser.add_argument(
        "--failover",
        action="store_true",
        help="failover dispatch for failure-hit requests",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the setup seed"
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down setup (50x4)"
    )
    _shared_sim_flags(parser)
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the observation as JSONL (implies --observe)",
    )


def _cmd_serve(args) -> int:
    from .cluster_sim import FailoverPolicy
    from .experiments.config import PaperSetup
    from .serving import ServingConfig, ServingControlPlane

    setup = PaperSetup()
    if args.quick:
        setup = setup.scaled_down()
    flash = ()
    if args.flash_epochs:
        flash = tuple(int(e) for e in args.flash_epochs.split(","))
    config = ServingConfig(
        epochs=args.epochs,
        epoch_minutes=args.epoch_minutes,
        theta=args.theta,
        replication_degree=args.degree,
        base_rate_per_min=args.base_rate,
        peak_rate_per_min=args.peak_rate,
        day_epochs=args.day_epochs,
        flash_epochs=flash,
        flash_multiplier=args.flash_multiplier,
        drift=args.drift,
        replan=args.replan,
        drift_threshold=args.drift_threshold,
        move_budget=args.move_budget,
        screen=args.screen,
        anneal_polish=args.anneal_polish,
        elastic=args.elastic,
        slo_rejection_rate=args.slo,
        max_servers=args.max_servers,
        dispatcher=args.dispatcher,
        engine=args.engine,
        backbone_mbps=args.backbone_mbps,
        failures=args.failures,
        failover=(FailoverPolicy() if args.failover else None),
        failover_on_down=args.failover,
        shards=args.shards,
        setup=setup,
        seed=args.seed,
    )
    observer = None
    if args.observe or args.trace_out:
        from .observe import Observer

        observer = Observer()
    runner = None
    if args.jobs > 1:
        from .runtime import ParallelRunner

        runner = ParallelRunner(jobs=args.jobs, observer=observer)
    try:
        result = ServingControlPlane(
            config, observer=observer, runner=runner
        ).run()
    finally:
        if runner is not None:
            runner.close()
    print(result.format())
    print(f"digest: {result.digest()}")
    if observer is not None and args.trace_out:
        lines = observer.export_jsonl(args.trace_out)
        print(f"trace: {lines} lines -> {args.trace_out}")
    return 0


def _cmd_pipeline(args) -> int:
    from .cluster_sim import FailoverPolicy, RereplicationPolicy
    from .experiments.config import PaperSetup
    from .pipeline import PipelineConfig, solve

    setup = PaperSetup()
    if args.quick:
        setup = setup.quick()
    config = PipelineConfig(
        theta=args.theta,
        replication_degree=args.degree,
        arrival_rate_per_min=args.rate,
        num_runs=args.runs,
        replicator=args.replicator,
        placer=args.placer,
        refine=args.refine,
        anneal=args.anneal,
        dispatcher=args.dispatcher,
        engine=args.engine,
        backbone_mbps=args.backbone_mbps,
        failures=args.failures,
        failover=(
            FailoverPolicy(max_retries=args.max_retries)
            if args.failover
            else None
        ),
        rereplication=(
            RereplicationPolicy(migration_mbps=args.migration_mbps)
            if args.rereplicate
            else None
        ),
        failover_on_down=args.failover,
        surrogate=args.surrogate,
        screen_candidates=args.screen_candidates,
        screen_top_k=args.top_k,
        screen_seed=args.screen_seed,
        shards=args.shards,
        setup=setup,
    )
    observer = None
    if args.observe or args.trace_out:
        from .observe import Observer, ObserverConfig

        observer = Observer(
            ObserverConfig(
                sample_interval_min=args.sample_interval,
                trace_events=args.trace_events,
            )
        )
    runner = None
    if args.jobs > 1:
        from .runtime import ParallelRunner

        runner = ParallelRunner(jobs=args.jobs, observer=observer)
    try:
        result = solve(config, observer=observer, runner=runner)
    finally:
        if runner is not None:
            runner.close()
    print(result.format())
    if observer is not None and args.trace_out:
        lines = observer.export_jsonl(args.trace_out)
        print(f"trace: {lines} lines -> {args.trace_out}")
    return 0


def _cmd_observe_report(args) -> int:
    from .observe import load_trace, render_trace_report

    events = load_trace(args.trace)
    print(render_trace_report(events, charts=args.chart))
    return 0


def _cmd_bench(argv: list[str]) -> int:
    """Delegate to the repo-root hot-path benchmark driver.

    The driver lives outside the installable package (it writes
    ``BENCH_hotpaths.json`` at the repo root), so it is loaded from the
    checkout by path; an installed-only environment gets a clear error.
    """
    import importlib.util
    from pathlib import Path

    script = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "bench_hotpaths.py"
    )
    if not script.exists():
        print(
            "bench requires a repository checkout "
            f"(no {script})",
            file=sys.stderr,
        )
        return 2
    spec = importlib.util.spec_from_file_location("bench_hotpaths", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main(argv)


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of optimal video replication/placement "
        "(ICPP 2002): experiments, fuzzing, the pipeline facade and "
        "observability reports.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Delegating wrappers: everything after the subcommand name is handed
    # to the historical module CLI unchanged.
    subparsers.add_parser(
        "experiments",
        help="figure harness (python -m repro.experiments ...)",
        add_help=False,
    )
    subparsers.add_parser(
        "fuzz",
        help="differential fuzzing (python -m repro.verify.fuzz ...)",
        add_help=False,
    )
    subparsers.add_parser(
        "bench",
        help="hot-path microbenchmarks writing BENCH_hotpaths.json "
        "(benchmarks/bench_hotpaths.py ...)",
        add_help=False,
    )
    _pipeline_parser(subparsers)
    _serve_parser(subparsers)
    report_parser = subparsers.add_parser(
        "observe-report", help="render a trace JSONL written by --trace-out"
    )
    report_parser.add_argument("trace", help="path to the JSONL trace")
    report_parser.add_argument(
        "--chart", action="store_true", help="append an ASCII load chart"
    )

    if argv and argv[0] == "experiments":
        from .experiments.__main__ import main as experiments_main

        return experiments_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from .verify.fuzz import main as fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "bench":
        return _cmd_bench(argv[1:])

    args = parser.parse_args(argv)
    if args.command == "pipeline":
        return _cmd_pipeline(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "observe-report":
        return _cmd_observe_report(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())

"""repro — reproduction of Zhou & Xu, "Optimal Video Replication and
Placement on a Cluster of Video-on-Demand Servers" (ICPP 2002).

The package is organized by subsystem (see DESIGN.md):

* :mod:`repro.popularity` — Zipf-like popularity models.
* :mod:`repro.model` — cluster/video model, layouts, objective (Eq. 1-7).
* :mod:`repro.replication` — Adams, Zipf-interval, classification and
  baseline replication algorithms.
* :mod:`repro.placement` — smallest-load-first, round-robin and extension
  placers, plus the Theorem 2/3 bounds.
* :mod:`repro.annealing` — simulated annealing for scalable bit rates.
* :mod:`repro.cluster_sim` — discrete-event VoD cluster simulator.
* :mod:`repro.workload` — synthetic workload generation and traces.
* :mod:`repro.analysis` — statistics and table formatting.
* :mod:`repro.experiments` — the paper's evaluation (Figures 4-6) plus
  extensions and ablations.
* :mod:`repro.observe` — metrics registry, event tracing and profiling
  hooks (the unified observability layer).
* :mod:`repro.pipeline` — the one-call replicate->place->simulate facade.

The most common entry points are re-exported here.  The pipeline facade
(:func:`solve`, :class:`PipelineConfig`, :class:`PipelineResult`) and the
observability types (:class:`Observer`, :class:`ObserverConfig`) are
re-exported lazily (PEP 562) so ``import repro`` stays light.
"""

from .model import (
    ClusterSpec,
    ImbalanceMetric,
    ObjectiveWeights,
    ReplicaLayout,
    ReplicationProblem,
    ServerSpec,
    Video,
    VideoCollection,
    communication_weights,
    load_imbalance,
    objective_value,
)
from .placement import (
    GreedyLeastLoadedPlacer,
    RandomFeasiblePlacer,
    RoundRobinPlacer,
    SmallestLoadFirstPlacer,
)
from .popularity import (
    EmpiricalPopularity,
    PopularityModel,
    UniformPopularity,
    ZipfPopularity,
    fit_zipf_theta,
    zipf_probabilities,
)
from .replication import (
    AdamsReplicator,
    ClassificationReplicator,
    ProportionalReplicator,
    ReplicationResult,
    ZipfIntervalReplicator,
    adams_replication,
    classification_replication,
    full_replication,
    no_replication,
    optimal_min_max_weight,
    oracle_replication,
    proportional_replication,
    round_robin_replication,
    zipf_interval_replication,
)

__version__ = "1.0.0"

#: Lazily re-exported names (PEP 562): attribute -> providing module.
_LAZY_EXPORTS = {
    "PipelineConfig": "repro.pipeline",
    "PipelineResult": "repro.pipeline",
    "SurrogateScreen": "repro.pipeline",
    "solve": "repro.pipeline",
    "Observer": "repro.observe",
    "ObserverConfig": "repro.observe",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "__version__",
    # facade (lazy)
    "PipelineConfig",
    "PipelineResult",
    "SurrogateScreen",
    "solve",
    # observability (lazy)
    "Observer",
    "ObserverConfig",
    # model
    "ClusterSpec",
    "ImbalanceMetric",
    "ObjectiveWeights",
    "ReplicaLayout",
    "ReplicationProblem",
    "ServerSpec",
    "Video",
    "VideoCollection",
    "communication_weights",
    "load_imbalance",
    "objective_value",
    # placement
    "GreedyLeastLoadedPlacer",
    "RandomFeasiblePlacer",
    "RoundRobinPlacer",
    "SmallestLoadFirstPlacer",
    # popularity
    "EmpiricalPopularity",
    "PopularityModel",
    "UniformPopularity",
    "ZipfPopularity",
    "fit_zipf_theta",
    "zipf_probabilities",
    # replication
    "AdamsReplicator",
    "ClassificationReplicator",
    "ProportionalReplicator",
    "ReplicationResult",
    "ZipfIntervalReplicator",
    "adams_replication",
    "classification_replication",
    "full_replication",
    "no_replication",
    "optimal_min_max_weight",
    "oracle_replication",
    "proportional_replication",
    "round_robin_replication",
    "zipf_interval_replication",
]

"""Cache-scale replication baselines from the distributed-caches literature.

Two competitors to the paper's smoothed-proportional (Zipf-interval)
scheme, both from the large-cache line of work surveyed in PAPERS.md:

* :class:`CacheProportionalReplicator` — the proportional-to-popularity
  cache allocation: the continuous allocation ``t_i = s * p_i`` clipped
  into the Eq. (7) box ``[1, N]``, with the scale ``s`` water-filled so
  the budget is met exactly, then rounded by largest remainder.  This is
  the fluid-limit optimum of the large-cache model (serve-rate matches
  demand exactly when capacity does), and the policy Tan & Massoulié
  prove asymptotically optimal for P2P VoD.
* :class:`LargeCacheReplicator` — the *stochastic* refinement of Moharir
  & Karamchandani's large-cache allocation: at finite cache sizes the
  proportional policy over-replicates the head (big service pools enjoy
  economies of scale) and starves the tail, so the optimal allocation
  solves a separable convex knapsack instead.  We instantiate their
  knapsack with this repo's Erlang service model — video ``i``'s ``r_i``
  replicas form a loss group of ``r_i * s`` stream slots offered
  ``a_i = A p_i`` Erlangs — and minimize the aggregate blocked fraction
  ``sum_i p_i B(a_i, r_i s)`` exactly by greedy marginal allocation
  (Fox's algorithm; optimal because Erlang-B is convex decreasing in the
  slot count).  The solution lands on square-root safety staffing:
  sub-proportional for the head, super-proportional for the tail.

Both allocations deviate from the unconstrained cache literature in one
deliberate way: Eq. (7)'s floor keeps ``r_i >= 1`` (every video stays on
the cluster), where pure cache models may evict cold content entirely.
See DESIGN.md for the model comparison against Eq. (1).
"""

from __future__ import annotations

import heapq

import numpy as np

from .base import ReplicationResult, Replicator, validate_replication_inputs

__all__ = [
    "box_waterfill_targets",
    "round_targets",
    "cache_proportional_replication",
    "CacheProportionalReplicator",
    "large_cache_replication",
    "LargeCacheReplicator",
]

#: 1/B cap: beyond this the blocking (and any marginal gain) is zero in
#: float64, and the inverse-Erlang recurrence would overflow.
_INV_B_CAP = 1e300


def box_waterfill_targets(
    weights: np.ndarray, num_servers: int, budget: int
) -> np.ndarray:
    """Continuous targets ``t_i = clip(s * w_i, 1, N)`` with ``sum t = budget``.

    The scale ``s`` is found by bisection — ``sum_i clip(s w_i, 1, N)`` is
    continuous and non-decreasing in ``s``, running from ``M`` (everything
    at the floor) to ``N * M`` (everything at the cap) — so the returned
    targets meet the budget to floating-point precision whenever
    ``M <= budget <= N * M``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    num_videos = weights.size
    budget = float(min(budget, num_servers * num_videos))
    if budget <= num_videos:
        return np.ones(num_videos)
    positive = weights[weights > 0]
    if positive.size == 0:
        return np.ones(num_videos)
    lo, hi = 0.0, num_servers / float(positive.min())
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        total = float(np.clip(mid * weights, 1.0, num_servers).sum())
        if total < budget:
            lo = mid
        else:
            hi = mid
    return np.clip(hi * weights, 1.0, num_servers)


def round_targets(
    targets: np.ndarray, num_servers: int, budget: int
) -> np.ndarray:
    """Largest-remainder rounding of box-constrained continuous targets.

    ``floor(t_i)`` never overshoots the budget (``t_i >= 1`` and
    ``sum t <= budget``); the remaining replicas go to the largest
    fractional remainders that are still below the ``N`` cap.
    """
    counts = np.floor(targets).astype(np.int64)
    counts = np.clip(counts, 1, num_servers)
    remaining = budget - int(counts.sum())
    if remaining > 0:
        remainders = targets - np.floor(targets)
        order = np.argsort(
            -(np.where(counts < num_servers, remainders, -np.inf)),
            kind="stable",
        )
        idx = 0
        num_videos = counts.size
        while remaining > 0:
            video = int(order[idx % num_videos])
            if counts[video] < num_servers:
                counts[video] += 1
                remaining -= 1
            idx += 1
            if idx > 2 * num_videos * num_servers:  # pragma: no cover - guard
                raise RuntimeError("target rounding failed to converge")
    return counts


def cache_proportional_replication(
    popularity: np.ndarray, num_servers: int, budget: int
) -> ReplicationResult:
    """Water-filled proportional-to-popularity cache allocation.

    Unlike :func:`repro.replication.proportional.proportional_replication`
    (Hamilton apportionment of the *unclipped* quotas), the continuous
    allocation here is re-scaled until the budget is met *after* the
    ``[1, N]`` clipping, so replicas shaved off the capped head are
    redistributed proportionally over the rest instead of by raw
    remainder order.
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    budget = min(budget, num_servers * probs.size)
    targets = box_waterfill_targets(probs, num_servers, budget)
    counts = round_targets(targets, num_servers, budget)
    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info={"algorithm": "cache_proportional"},
    )


class CacheProportionalReplicator(Replicator):
    """Object-style wrapper around :func:`cache_proportional_replication`."""

    name = "cache_proportional"

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return cache_proportional_replication(popularity, num_servers, budget)


def _advance_inv_b(inv_b: float, offered: float, slots_from: int, step: int) -> float:
    """Advance ``1/B(a, c)`` from ``c = slots_from`` by ``step`` slots.

    Uses the inverse Erlang-B recurrence ``I_c = 1 + (c / a) I_{c-1}``
    (``I_0 = 1``), capped so deep-tail groups cannot overflow float64.
    """
    for c in range(slots_from + 1, slots_from + step + 1):
        inv_b = 1.0 + (c / offered) * inv_b
        if inv_b > _INV_B_CAP:
            return _INV_B_CAP
    return inv_b


def large_cache_replication(
    popularity: np.ndarray,
    num_servers: int,
    budget: int,
    *,
    slots_per_replica: int = 15,
    load_factor: float = 0.9,
) -> ReplicationResult:
    """Optimal large-cache allocation by greedy marginal allocation.

    Minimizes the expected blocked fraction ``sum_i p_i B(a_i, r_i s)``
    over ``1 <= r_i <= N``, ``sum r_i = budget``, where ``s`` is the
    stream-slot capacity a single replica contributes
    (``slots_per_replica``; the paper's configuration has ~450 slots
    spread over ~30 replicas per server, i.e. ~15) and the offered loads
    put the system at ``load_factor`` of its designed capacity:
    ``A = load_factor * budget * s`` total Erlangs, split ``a_i = A p_i``.

    Greedy marginal allocation (assign each spare replica to the video
    with the largest blocking decrease) is *exactly* optimal here because
    the objective is separable and Erlang-B is convex decreasing in the
    slot count, so the per-video marginal gains are themselves
    decreasing.
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    if slots_per_replica < 1:
        raise ValueError(
            f"slots_per_replica must be >= 1, got {slots_per_replica}"
        )
    if load_factor <= 0:
        raise ValueError(f"load_factor must be > 0, got {load_factor}")
    num_videos = probs.size
    budget = min(budget, num_servers * num_videos)
    step = int(slots_per_replica)
    offered_total = load_factor * budget * step
    # Floor tiny offered loads: a zero-popularity video never blocks and
    # must never attract replicas beyond its Eq. (7) floor of one.
    offered = np.maximum(offered_total * probs, 1e-12)

    # Vectorized inverse-B ladders at r=1 and r=2 for every video.
    inv_cur = np.ones(num_videos)
    for c in range(1, step + 1):
        inv_cur = np.minimum(1.0 + (c / offered) * inv_cur, _INV_B_CAP)
    inv_next = inv_cur.copy()
    for c in range(step + 1, 2 * step + 1):
        inv_next = np.minimum(1.0 + (c / offered) * inv_next, _INV_B_CAP)

    counts = np.ones(num_videos, dtype=np.int64)
    remaining = budget - num_videos
    gains = probs * (1.0 / inv_cur - 1.0 / inv_next)
    heap = [
        (-float(gains[i]), i)
        for i in range(num_videos)
        if num_servers > 1
    ]
    heapq.heapify(heap)
    while remaining > 0 and heap:
        neg_gain, video = heapq.heappop(heap)
        counts[video] += 1
        remaining -= 1
        if counts[video] >= num_servers:
            continue
        a_i = float(offered[video])
        cur = float(inv_next[video])
        nxt = _advance_inv_b(cur, a_i, int(counts[video]) * step, step)
        inv_cur[video], inv_next[video] = cur, nxt
        gain = float(probs[video]) * (1.0 / cur - 1.0 / nxt)
        heapq.heappush(heap, (-gain, video))
    # Recompute the final per-video blocking in one vectorized ladder so
    # the reported objective is exact at the final counts.
    inv_final = np.ones(num_videos)
    slots = counts * step
    for c in range(1, int(slots.max()) + 1):
        advanced = np.minimum(1.0 + (c / offered) * inv_final, _INV_B_CAP)
        inv_final = np.where(c <= slots, advanced, inv_final)
    blocked = float(probs @ (1.0 / inv_final))
    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info={
            "algorithm": "large_cache",
            "slots_per_replica": step,
            "load_factor": float(load_factor),
            "offered_erlangs": float(offered_total),
            "predicted_blocked_fraction": blocked,
        },
    )


class LargeCacheReplicator(Replicator):
    """Object-style wrapper around :func:`large_cache_replication`."""

    name = "large_cache"

    def __init__(
        self, *, slots_per_replica: int = 15, load_factor: float = 0.9
    ) -> None:
        self._slots_per_replica = int(slots_per_replica)
        self._load_factor = float(load_factor)

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return large_cache_replication(
            popularity,
            num_servers,
            budget,
            slots_per_replica=self._slots_per_replica,
            load_factor=self._load_factor,
        )

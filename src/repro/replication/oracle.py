"""Exact oracle for the Eq. (8) min-max replication objective.

Used by the test suite to verify Theorem 1 (optimality of the bounded Adams
method) and by analyses that want the true optimum independently of any
greedy procedure.

The optimum of ``min max_i p_i / r_i`` subject to ``sum r_i <= R`` and
``1 <= r_i <= N`` has a closed search structure: a target weight ``w`` is
achievable iff ``sum_i clip(ceil(p_i / w), 1, N) <= R`` *and*
``w >= max_i p_i / N`` (videos capped at ``N`` replicas cannot get below
``p_i / N``).  Feasibility is monotone in ``w`` and the optimal value is one
of the ``O(M * N)`` candidates ``p_i / k``, so a binary search over the
sorted candidate set finds it exactly.
"""

from __future__ import annotations

import numpy as np

from .base import ReplicationResult, validate_replication_inputs

__all__ = ["optimal_min_max_weight", "oracle_replication"]

#: Relative slack applied inside ceil() to absorb floating-point error when
#: a candidate weight equals ``p_i / k`` exactly.
_CEIL_SLACK = 1e-12


def _replicas_needed(probs: np.ndarray, weight: float, num_servers: int) -> np.ndarray:
    """Minimal ``r_i`` so every video's replica weight is <= *weight*."""
    needed = np.ceil(probs / weight - _CEIL_SLACK)
    return np.clip(needed, 1, num_servers).astype(np.int64)


def optimal_min_max_weight(
    popularity: np.ndarray, num_servers: int, budget: int
) -> float:
    """Exact optimum of Eq. (8): the least achievable ``max_i p_i / r_i``."""
    probs = validate_replication_inputs(popularity, num_servers, budget)
    # Every achievable max-weight is p_i / k for some video i, k in 1..N;
    # the floor below which no budget helps is max_i p_i / N.
    floor = float(probs.max()) / num_servers
    candidates = np.unique(np.outer(probs, 1.0 / np.arange(1, num_servers + 1)))
    candidates = candidates[candidates >= floor - _CEIL_SLACK]
    # Binary search the smallest feasible candidate (feasibility is monotone
    # non-decreasing in w).
    lo, hi = 0, candidates.size - 1
    # The largest candidate (max_i p_i with r_i = 1 for the top video) is
    # always feasible because budget >= M.
    while lo < hi:
        mid = (lo + hi) // 2
        needed = _replicas_needed(probs, float(candidates[mid]), num_servers)
        if int(needed.sum()) <= budget:
            hi = mid
        else:
            lo = mid + 1
    return float(candidates[lo])


def oracle_replication(
    popularity: np.ndarray, num_servers: int, budget: int
) -> ReplicationResult:
    """An optimal (per Eq. 8) replica assignment built from the exact oracle.

    Any budget left over after meeting the optimal weight is spent greedily
    on the currently heaviest videos, which cannot worsen the max weight and
    mirrors what the Adams method does with its tail iterations.
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    weight = optimal_min_max_weight(probs, num_servers, budget)
    counts = _replicas_needed(probs, weight, num_servers)
    leftover = budget - int(counts.sum())
    leftover = min(leftover, num_servers * probs.size - int(counts.sum()))
    while leftover > 0:
        # Vectorized greedy tail: raise the heaviest non-capped videos.
        weights = np.where(counts < num_servers, probs / counts, -np.inf)
        video = int(np.argmax(weights))
        if not np.isfinite(weights[video]):
            break
        counts[video] += 1
        leftover -= 1
    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info={"algorithm": "oracle", "optimal_max_weight": weight},
    )

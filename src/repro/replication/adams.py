"""Bounded Adams monotone divisor replication (Sec. 4.1.1).

The algorithm first gives every video one replica, then repeatedly grants one
more replica to the video whose replicas currently carry the greatest
communication weight ``w_i = p_i / r_i`` — provided the video has fewer
replicas than servers (the Eq. 7 cap).  This is the Adams divisor method
from apportionment theory with an upper bound, and Theorem 1 states it
minimizes ``max_i p_i / r_i`` (Eq. 8) for the given budget.

The implementation keeps the candidate videos in a binary max-heap keyed by
the *next-granting* priority, giving the paper's worst-case complexity
``O(M + (N*C) log M)``.

Ties are broken toward the lower video index (the more popular video),
matching the worked example of the paper's Figure 1.
"""

from __future__ import annotations

import heapq

import numpy as np

from .base import ReplicationResult, Replicator, validate_replication_inputs

__all__ = ["adams_replication", "AdamsReplicator"]


def adams_replication(
    popularity: np.ndarray,
    num_servers: int,
    budget: int,
    *,
    record_trace: bool = False,
) -> ReplicationResult:
    """Run the bounded Adams monotone divisor replication.

    Parameters
    ----------
    popularity:
        Probability vector ``p`` (any order; sorted input is not required).
    num_servers:
        ``N`` — also the per-video replica cap.
    budget:
        Cluster replica budget ``N * C``; at least ``M``.
    record_trace:
        When True, ``result.info["trace"]`` holds one
        ``(iteration, video, new_count, new_weight)`` tuple per duplication,
        which reproduces the paper's Figure 1 walkthrough.

    Returns
    -------
    ReplicationResult
        With ``info`` keys ``iterations`` (duplications performed) and
        ``saturated`` (True when every video hit the ``N`` cap before the
        budget ran out).
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    num_videos = probs.size
    counts = np.ones(num_videos, dtype=np.int64)

    # Max-heap of (-current_weight, video). Entries whose video reached the
    # cap are never re-pushed.
    heap: list[tuple[float, int]] = [(-float(p), i) for i, p in enumerate(probs)]
    heapq.heapify(heap)

    trace: list[tuple[int, int, int, float]] = []
    remaining = min(budget, num_servers * num_videos) - num_videos
    iterations = 0
    while remaining > 0 and heap:
        neg_weight, video = heapq.heappop(heap)
        counts[video] += 1
        iterations += 1
        remaining -= 1
        new_weight = float(probs[video]) / counts[video]
        if record_trace:
            trace.append((iterations, video, int(counts[video]), new_weight))
        if counts[video] < num_servers:
            heapq.heappush(heap, (-new_weight, video))

    info = {
        "algorithm": "adams",
        "iterations": iterations,
        "saturated": not heap,
    }
    if record_trace:
        info["trace"] = trace
    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info=info,
    )


class AdamsReplicator(Replicator):
    """Object-style wrapper around :func:`adams_replication`."""

    name = "adams"

    def __init__(self, *, record_trace: bool = False) -> None:
        self._record_trace = bool(record_trace)

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return adams_replication(
            popularity, num_servers, budget, record_trace=self._record_trace
        )

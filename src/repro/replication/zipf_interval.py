"""Zipf-like-distribution-based replication (Sec. 4.1.2).

The time-efficient approximation of the optimal (Adams) replication.  The
popularity *range* ``[p_M, p_1]`` is partitioned into ``N`` intervals whose
widths follow a Zipf-like law with tunable skew ``u`` (the paper's function
``generate(u)``): interval ``k`` (counting from the most-popular end) has
width proportional to ``k ** -u``.  Every video whose popularity falls in
interval ``k`` is assigned ``r = N + 1 - k`` replicas (function
``assignment(u, r)``), so the hottest interval maps to ``N`` replicas and the
coldest to one.

Lemma 4.1: the total number of replicas produced is non-decreasing in ``u``
(increasing ``u`` widens the high-replica intervals).  A binary search over
``u`` therefore finds the assignment that best fills the replica budget
``N * C``; the paper bounds the search and shows overall complexity
``O(M log M)``, versus ``O(M + N*C log M)`` for the Adams method — the win
being that the cost does not grow with the storage capacity.

Degenerate cases handled explicitly:

* **Uniform popularity** (``p_1 == p_M``): the interval construction is
  undefined; the paper notes a simple round-robin replication is optimal
  here, so we delegate to :func:`repro.replication.uniform.round_robin_replication`.
* **Budget below the algorithm's floor**: even at ``u -> -inf`` the top
  video sits in interval 1, so the minimum total is about ``M + N - 1``.
  When the budget is smaller, the result is repaired by trimming replicas
  from the videos whose weight grows least.
"""

from __future__ import annotations

import heapq

import numpy as np

from .._validation import check_int_in_range
from .base import ReplicationResult, Replicator, validate_replication_inputs

__all__ = [
    "interval_boundaries",
    "interval_replica_counts",
    "zipf_interval_replication",
    "ZipfIntervalReplicator",
]

#: Widest skew bracket explored before declaring the budget unreachable by
#: pure interval tuning (the assignment saturates far before |u| = 64).
_MAX_ABS_U = 64.0


def interval_boundaries(
    p_max: float, p_min: float, num_servers: int, u: float
) -> np.ndarray:
    """Boundaries ``z_0 > z_1 > ... > z_N`` of the ``generate(u)`` partition.

    ``z_0 = p_max`` and ``z_N = p_min``; interval ``k`` is ``[z_k, z_{k-1})``
    with width proportional to the Zipf weight ``k ** -u``.
    """
    check_int_in_range("num_servers", num_servers, 1)
    if not p_max >= p_min:
        raise ValueError(f"p_max ({p_max}) must be >= p_min ({p_min})")
    ranks = np.arange(1, num_servers + 1, dtype=np.float64)
    # Normalize in log space to keep extreme |u| finite.
    log_w = -u * np.log(ranks)
    log_w -= log_w.max()
    weights = np.exp(log_w)
    weights /= weights.sum()
    cumulative = np.concatenate(([0.0], np.cumsum(weights)))
    cumulative[-1] = 1.0  # guard against round-off
    return p_max - (p_max - p_min) * cumulative


def interval_replica_counts(
    popularity: np.ndarray, num_servers: int, u: float
) -> np.ndarray:
    """Replica counts for skew *u*: video in interval ``k`` gets ``N+1-k``."""
    probs = np.asarray(popularity, dtype=np.float64)
    boundaries = interval_boundaries(
        float(probs.max()), float(probs.min()), num_servers, u
    )
    # interval index k = 1 + #{ interior boundaries z_1..z_{N-1} > p }.
    interior = boundaries[1:num_servers]  # descending
    # searchsorted needs ascending input; negate both sides.
    above = np.searchsorted(-interior, -probs, side="left")
    return (num_servers - above).astype(np.int64)


def _trim_to_budget(
    probs: np.ndarray, counts: np.ndarray, budget: int
) -> tuple[np.ndarray, int]:
    """Remove replicas until the budget holds, hurting max-weight least.

    Each step removes one replica from the video whose post-removal weight
    ``p_i / (r_i - 1)`` is smallest.  Returns the counts and the number of
    replicas trimmed.
    """
    counts = counts.copy()
    excess = int(counts.sum()) - budget
    if excess <= 0:
        return counts, 0
    # Lazy-free min-heap: one live entry per trimmable video.  A removal
    # only changes that video's own weight, so each step is one pop plus at
    # most one push — O(excess * log M) against the old full-array argmin
    # scan's O(excess * M).  Entries are (weight, video); on ties the heap
    # yields the lowest video index, matching np.argmin's first-minimum
    # tie-break, so the output is bit-identical to the scan.
    heap = [
        (probs[video] / (counts[video] - 1), video)
        for video in range(counts.size)
        if counts[video] > 1
    ]
    heapq.heapify(heap)
    trimmed = 0
    while excess > 0:
        if not heap:
            raise RuntimeError("cannot trim below one replica per video")
        _, video = heapq.heappop(heap)
        counts[video] -= 1
        trimmed += 1
        excess -= 1
        if counts[video] > 1:
            heapq.heappush(heap, (probs[video] / (counts[video] - 1), video))
    return counts, trimmed


def zipf_interval_replication(
    popularity: np.ndarray,
    num_servers: int,
    budget: int,
    *,
    tol: float = 1e-8,
    max_iterations: int = 120,
) -> ReplicationResult:
    """Binary-search the interval skew ``u`` to fill the replica budget.

    Returns the assignment with the largest total number of replicas that
    does not exceed *budget* over the explored bracket (Lemma 4.1 makes the
    search sound).  ``info`` records the tuned ``u``, the evaluation count
    and how much of the budget was used.
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    num_videos = probs.size
    budget = min(budget, num_servers * num_videos)

    if float(probs.max()) == float(probs.min()):
        # Uniform popularity: round-robin replication is optimal (Sec. 4.1).
        from .uniform import round_robin_replication

        result = round_robin_replication(probs, num_servers, budget)
        result.info.update({"algorithm": "zipf_interval", "degenerate": "uniform"})
        return result

    evaluations = 0

    def total_at(u: float) -> tuple[int, np.ndarray]:
        nonlocal evaluations
        evaluations += 1
        counts = interval_replica_counts(probs, num_servers, u)
        return int(counts.sum()), counts

    # --- bracket [lo, hi] with total(lo) <= budget < total(hi) -----------
    lo, hi = -1.0, 1.0
    total_lo, counts_lo = total_at(lo)
    while total_lo > budget and lo > -_MAX_ABS_U:
        lo *= 2.0
        total_lo, counts_lo = total_at(lo)
    total_hi, counts_hi = total_at(hi)
    while total_hi <= budget and hi < _MAX_ABS_U:
        # hi still fits: remember it as the best-so-far lower bracket.
        lo, total_lo, counts_lo = hi, total_hi, counts_hi
        hi *= 2.0
        total_hi, counts_hi = total_at(hi)

    trimmed = 0
    if total_lo > budget:
        # Budget below the algorithm's floor (~ M + N - 1): repair by trim.
        best_counts, trimmed = _trim_to_budget(probs, counts_lo, budget)
        best_u, best_total = lo, int(best_counts.sum())
        iterations = 0
    elif total_hi <= budget:
        # Even the widest skew fits: take it (typically full replication).
        best_u, best_total, best_counts = hi, total_hi, counts_hi
        iterations = 0
    else:
        # --- binary search ------------------------------------------------
        best_u, best_total, best_counts = lo, total_lo, counts_lo
        iterations = 0
        while hi - lo > tol and iterations < max_iterations:
            mid = 0.5 * (lo + hi)
            total_mid, counts_mid = total_at(mid)
            if total_mid <= budget:
                lo = mid
                if total_mid > best_total:
                    best_u, best_total, best_counts = mid, total_mid, counts_mid
            else:
                hi = mid
            iterations += 1

    return ReplicationResult(
        replica_counts=best_counts,
        num_servers=num_servers,
        popularity=probs,
        info={
            "algorithm": "zipf_interval",
            "u": best_u,
            "iterations": iterations,
            "evaluations": evaluations,
            "trimmed": trimmed,
            "budget": budget,
            "budget_utilization": best_total / budget,
        },
    )


class ZipfIntervalReplicator(Replicator):
    """Object-style wrapper around :func:`zipf_interval_replication`."""

    name = "zipf"

    def __init__(self, *, tol: float = 1e-8, max_iterations: int = 120) -> None:
        if tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        check_int_in_range("max_iterations", max_iterations, 1)
        self._tol = float(tol)
        self._max_iterations = int(max_iterations)

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return zipf_interval_replication(
            popularity,
            num_servers,
            budget,
            tol=self._tol,
            max_iterations=self._max_iterations,
        )

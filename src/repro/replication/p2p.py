"""Tan–Massoulié P2P replication: proportional-to-demand with safety staffing.

"Optimal Content Placement for Peer-to-Peer Video-on-Demand Systems"
(Tan & Massoulié, PAPERS.md) shows that in a P2P swarm where each box
stores a few videos and serves whichever it stores, the loss-optimal
replication is *proportional to demand* in the many-box limit, with a
finite-system correction that staffs each video slightly above its mean
demand — the classical square-root safety rule.  Mapped onto this repo's
cluster model, video ``i``'s expected demand in replica units is
``d_i = p_i * budget`` and the target allocation is

    ``t_i  proportional to  d_i + beta * sqrt(d_i)``,

water-filled into the Eq. (7) box ``[1, N]`` and rounded by largest
remainder (shared machinery in :mod:`repro.replication.cache_alloc`).
``beta = 0`` degenerates to :class:`CacheProportionalReplicator`; the
default ``beta = 1`` is the staffing level Tan & Massoulié's fluid+
diffusion analysis suggests.  The placement counterpart — full striping
so concurrent swarms decorrelate across boxes — is
:class:`repro.placement.p2p.PopularityStripePlacer`.
"""

from __future__ import annotations

import numpy as np

from .base import ReplicationResult, Replicator, validate_replication_inputs
from .cache_alloc import box_waterfill_targets, round_targets

__all__ = ["p2p_replication", "P2PReplicator"]


def p2p_replication(
    popularity: np.ndarray,
    num_servers: int,
    budget: int,
    *,
    safety_factor: float = 1.0,
) -> ReplicationResult:
    """Square-root-staffed proportional replication (Tan–Massoulié)."""
    probs = validate_replication_inputs(popularity, num_servers, budget)
    if safety_factor < 0:
        raise ValueError(
            f"safety_factor must be >= 0, got {safety_factor}"
        )
    budget = min(budget, num_servers * probs.size)
    demand = probs * budget
    weights = demand + safety_factor * np.sqrt(demand)
    targets = box_waterfill_targets(weights, num_servers, budget)
    counts = round_targets(targets, num_servers, budget)
    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info={
            "algorithm": "p2p",
            "safety_factor": float(safety_factor),
        },
    )


class P2PReplicator(Replicator):
    """Object-style wrapper around :func:`p2p_replication`."""

    name = "p2p"

    def __init__(self, *, safety_factor: float = 1.0) -> None:
        self._safety_factor = float(safety_factor)

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return p2p_replication(
            popularity,
            num_servers,
            budget,
            safety_factor=self._safety_factor,
        )

"""Trivial replication baselines: none, full and round-robin.

* :func:`no_replication` — one replica per video (the evaluation's
  "non-replication" reference point, replication degree 1.0).
* :func:`full_replication` — every video on every server (degree ``N``),
  which the paper notes is "generally inefficient if not impossible" given
  video storage sizes but is the limit in which all algorithms coincide.
* :func:`round_robin_replication` — spreads the budget evenly across videos
  regardless of popularity; optimal when popularity is uniform (Sec. 4.1)
  and the degenerate case of the Zipf-interval scheme.
"""

from __future__ import annotations

import numpy as np

from .base import ReplicationResult, Replicator, validate_replication_inputs

__all__ = [
    "no_replication",
    "full_replication",
    "round_robin_replication",
    "RoundRobinReplicator",
]


def no_replication(popularity: np.ndarray, num_servers: int) -> ReplicationResult:
    """One replica per video (replication degree 1.0)."""
    probs = validate_replication_inputs(popularity, num_servers, len(popularity))
    return ReplicationResult(
        replica_counts=np.ones(probs.size, dtype=np.int64),
        num_servers=num_servers,
        popularity=probs,
        info={"algorithm": "none"},
    )


def full_replication(
    popularity: np.ndarray, num_servers: int, budget: int
) -> ReplicationResult:
    """Every video on every server; requires ``budget >= N * M``."""
    probs = validate_replication_inputs(popularity, num_servers, budget)
    needed = num_servers * probs.size
    if budget < needed:
        raise ValueError(
            f"full replication needs {needed} replicas but the budget is {budget}"
        )
    return ReplicationResult(
        replica_counts=np.full(probs.size, num_servers, dtype=np.int64),
        num_servers=num_servers,
        popularity=probs,
        info={"algorithm": "full"},
    )


def round_robin_replication(
    popularity: np.ndarray, num_servers: int, budget: int
) -> ReplicationResult:
    """Distribute the budget evenly: ``r_i in {floor(R/M), ceil(R/M)}``.

    The extra replicas of an uneven split go to the most popular videos
    (lowest indices after sorting), which is the natural tie-break and makes
    the scheme optimal under uniform popularity.
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    num_videos = probs.size
    budget = min(budget, num_servers * num_videos)
    base, extra = divmod(budget, num_videos)
    base = min(base, num_servers)
    counts = np.full(num_videos, base, dtype=np.int64)
    if base < num_servers and extra > 0:
        order = np.argsort(-probs, kind="stable")
        counts[order[:extra]] += 1
    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info={"algorithm": "round_robin"},
    )


class RoundRobinReplicator(Replicator):
    """Object-style wrapper around :func:`round_robin_replication`."""

    name = "round_robin_replication"

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return round_robin_replication(popularity, num_servers, budget)

"""Proportional (largest-remainder) replication baseline.

Classical apportionment assigns replicas in proportion to popularity using
Hamilton's largest-remainder method, bounded by the Eq. (7) cap.  The paper
notes the replication problem "is close to a classical apportionment
problem"; this baseline is the textbook alternative to the Adams divisor
method and is useful for quantifying how much the min-max (Adams) criterion
actually buys over naive proportionality.
"""

from __future__ import annotations

import numpy as np

from .base import ReplicationResult, Replicator, validate_replication_inputs

__all__ = ["proportional_replication", "ProportionalReplicator"]


def proportional_replication(
    popularity: np.ndarray, num_servers: int, budget: int
) -> ReplicationResult:
    """Largest-remainder apportionment with ``1 <= r_i <= N``.

    Quotas ``q_i = p_i * budget`` are floored into ``[1, N]``; the remaining
    replicas go to the videos with the largest remainders that are still
    below the cap.
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    num_videos = probs.size
    budget = min(budget, num_servers * num_videos)

    quotas = probs * budget
    counts = np.clip(np.floor(quotas).astype(np.int64), 1, num_servers)
    remaining = budget - int(counts.sum())

    if remaining > 0:
        remainders = quotas - np.floor(quotas)
        # Videos at the cap cannot take more; push them to the end.
        order = np.argsort(-(np.where(counts < num_servers, remainders, -np.inf)))
        idx = 0
        while remaining > 0:
            video = int(order[idx % num_videos])
            if counts[video] < num_servers:
                counts[video] += 1
                remaining -= 1
            idx += 1
            if idx > 2 * num_videos * num_servers:  # pragma: no cover - guard
                raise RuntimeError("proportional replication failed to converge")
    elif remaining < 0:
        # Flooring plus the 1-replica floor can overshoot tiny budgets;
        # trim from the least-quota videos still above one replica.
        order = np.argsort(quotas)
        idx = 0
        while remaining < 0:
            video = int(order[idx % num_videos])
            if counts[video] > 1:
                counts[video] -= 1
                remaining += 1
            idx += 1
            if idx > 2 * num_videos * num_servers:  # pragma: no cover - guard
                raise RuntimeError("proportional replication failed to converge")

    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info={"algorithm": "proportional"},
    )


class ProportionalReplicator(Replicator):
    """Object-style wrapper around :func:`proportional_replication`."""

    name = "proportional"

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return proportional_replication(popularity, num_servers, budget)

"""Video replication algorithms (systems S3-S6).

Given the popularity vector ``p``, the number of servers ``N`` and the
cluster-wide replica budget ``N * C``, a replication algorithm assigns each
video a replica count ``r_i`` with ``1 <= r_i <= N`` and ``sum r_i <= N*C``,
aiming to minimize the largest per-replica communication weight
``max_i p_i / r_i`` (Eq. 8) so the later placement can balance load.

Implemented algorithms:

* :class:`AdamsReplicator` — the bounded Adams monotone divisor method
  (Sec. 4.1.1), optimal for Eq. (8) (Theorem 1).
* :class:`ZipfIntervalReplicator` — the time-efficient approximation that
  exploits Zipf-like popularity structure (Sec. 4.1.2).
* :class:`ClassificationReplicator` — the straightforward baseline the
  evaluation compares against (from the authors' companion work [19]).
* :class:`ProportionalReplicator`, :func:`no_replication`,
  :func:`full_replication`, :func:`round_robin_replication` — additional
  baselines.
* :func:`optimal_min_max_weight`, :func:`oracle_replication` — an exact
  oracle for Eq. (8) used to verify Theorem 1 in the test suite.
"""

from .adams import AdamsReplicator, adams_replication
from .base import ReplicationResult, Replicator, validate_replication_inputs
from .classification import ClassificationReplicator, classification_replication
from .oracle import optimal_min_max_weight, oracle_replication
from .proportional import ProportionalReplicator, proportional_replication
from .uniform import (
    RoundRobinReplicator,
    full_replication,
    no_replication,
    round_robin_replication,
)
from .zipf_interval import (
    ZipfIntervalReplicator,
    interval_boundaries,
    interval_replica_counts,
    zipf_interval_replication,
)

__all__ = [
    "AdamsReplicator",
    "adams_replication",
    "ReplicationResult",
    "Replicator",
    "validate_replication_inputs",
    "ClassificationReplicator",
    "classification_replication",
    "optimal_min_max_weight",
    "oracle_replication",
    "ProportionalReplicator",
    "proportional_replication",
    "RoundRobinReplicator",
    "full_replication",
    "no_replication",
    "round_robin_replication",
    "ZipfIntervalReplicator",
    "interval_boundaries",
    "interval_replica_counts",
    "zipf_interval_replication",
]

"""Video replication algorithms (systems S3-S6).

Given the popularity vector ``p``, the number of servers ``N`` and the
cluster-wide replica budget ``N * C``, a replication algorithm assigns each
video a replica count ``r_i`` with ``1 <= r_i <= N`` and ``sum r_i <= N*C``,
aiming to minimize the largest per-replica communication weight
``max_i p_i / r_i`` (Eq. 8) so the later placement can balance load.

Implemented algorithms:

* :class:`AdamsReplicator` — the bounded Adams monotone divisor method
  (Sec. 4.1.1), optimal for Eq. (8) (Theorem 1).
* :class:`ZipfIntervalReplicator` — the time-efficient approximation that
  exploits Zipf-like popularity structure (Sec. 4.1.2).
* :class:`ClassificationReplicator` — the straightforward baseline the
  evaluation compares against (from the authors' companion work [19]).
* :class:`ProportionalReplicator`, :func:`no_replication`,
  :func:`full_replication`, :func:`round_robin_replication` — additional
  baselines.
* :func:`optimal_min_max_weight`, :func:`oracle_replication` — an exact
  oracle for Eq. (8) used to verify Theorem 1 in the test suite.
* :class:`CacheProportionalReplicator`, :class:`LargeCacheReplicator`,
  :class:`P2PReplicator` — cache-scale baselines from the large-cache
  and P2P VoD literature (see :mod:`repro.replication.cache_alloc` and
  :mod:`repro.replication.p2p`).

:data:`REPLICATOR_REGISTRY` maps every pipeline-selectable strategy name
to its class; :func:`make_replicator` instantiates by name.  The
registry is the single source of truth for ``PipelineConfig.replicator``
choices, the ``python -m repro pipeline --replicator`` CLI and the
surrogate screen's candidate field, and every registered strategy is run
through the shared conformance suite in
``tests/test_replication_properties.py``.
"""

from .adams import AdamsReplicator, adams_replication
from .base import ReplicationResult, Replicator, validate_replication_inputs
from .cache_alloc import (
    CacheProportionalReplicator,
    LargeCacheReplicator,
    cache_proportional_replication,
    large_cache_replication,
)
from .classification import ClassificationReplicator, classification_replication
from .oracle import optimal_min_max_weight, oracle_replication
from .p2p import P2PReplicator, p2p_replication
from .proportional import ProportionalReplicator, proportional_replication
from .uniform import (
    RoundRobinReplicator,
    full_replication,
    no_replication,
    round_robin_replication,
)
from .zipf_interval import (
    ZipfIntervalReplicator,
    interval_boundaries,
    interval_replica_counts,
    zipf_interval_replication,
)

#: Pipeline-selectable replication strategies, by name.  Order matters:
#: the surrogate screen enumerates candidates in registry order, so new
#: strategies append (keeping historical candidate streams stable).
REPLICATOR_REGISTRY: dict[str, type[Replicator]] = {
    "zipf": ZipfIntervalReplicator,
    "classification": ClassificationReplicator,
    "adams": AdamsReplicator,
    "proportional": ProportionalReplicator,
    "cache_proportional": CacheProportionalReplicator,
    "large_cache": LargeCacheReplicator,
    "p2p": P2PReplicator,
}


def make_replicator(name: str) -> Replicator:
    """Instantiate a registered replication strategy by name."""
    try:
        cls = REPLICATOR_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown replicator {name!r}; "
            f"choose from {sorted(REPLICATOR_REGISTRY)}"
        ) from None
    return cls()


__all__ = [
    "REPLICATOR_REGISTRY",
    "make_replicator",
    "AdamsReplicator",
    "adams_replication",
    "ReplicationResult",
    "Replicator",
    "validate_replication_inputs",
    "CacheProportionalReplicator",
    "cache_proportional_replication",
    "LargeCacheReplicator",
    "large_cache_replication",
    "P2PReplicator",
    "p2p_replication",
    "ClassificationReplicator",
    "classification_replication",
    "optimal_min_max_weight",
    "oracle_replication",
    "ProportionalReplicator",
    "proportional_replication",
    "RoundRobinReplicator",
    "full_replication",
    "no_replication",
    "round_robin_replication",
    "ZipfIntervalReplicator",
    "interval_boundaries",
    "interval_replica_counts",
    "zipf_interval_replication",
]

"""Classification-based replication — the evaluation's baseline.

The paper compares its algorithms against "a feasible and straightforward
algorithm called classification based replication [19]" (the authors'
companion request-redirection paper).  The scheme classifies videos into a
small number of popularity classes and gives every video in a class the same
replica count — a coarse-granularity strategy whose per-replica communication
weights are much less even than Adams/Zipf replication, which is exactly why
the paper uses it as the baseline.

Reconstruction (the companion paper's details are not in the provided text,
so this interpretation is documented here and in DESIGN.md):

1. Sort videos by popularity (non-increasing) and split them into ``N``
   equal-count classes.
2. Give every video one replica, then distribute the remaining budget to the
   classes proportionally to their aggregate popularity, every video of a
   class receiving the same extra count (capped at ``N`` total).
3. Spend any cap/rounding leftovers one class at a time from the hottest
   class down.

The scheme is deterministic, respects Eq. (7) and never exceeds the budget.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_int_in_range
from .base import ReplicationResult, Replicator, validate_replication_inputs

__all__ = ["classification_replication", "ClassificationReplicator"]


def classification_replication(
    popularity: np.ndarray,
    num_servers: int,
    budget: int,
    *,
    num_classes: int | None = None,
) -> ReplicationResult:
    """Assign per-class replica counts proportional to class popularity.

    Parameters
    ----------
    num_classes:
        Number of popularity classes; defaults to ``N`` (so class ``k``
        roughly corresponds to ``N + 1 - k`` replicas in a saturated
        cluster, mirroring the interval scheme's granularity).
    """
    probs = validate_replication_inputs(popularity, num_servers, budget)
    num_videos = probs.size
    budget = min(budget, num_servers * num_videos)
    if num_classes is None:
        num_classes = min(num_servers, num_videos)
    check_int_in_range("num_classes", num_classes, 1, num_videos)

    order = np.argsort(-probs, kind="stable")
    # Equal-count classes over the sorted videos (first classes may be one
    # video larger when M % num_classes != 0).
    class_sizes = np.full(num_classes, num_videos // num_classes, dtype=np.int64)
    class_sizes[: num_videos % num_classes] += 1
    class_starts = np.concatenate(([0], np.cumsum(class_sizes)))

    sorted_probs = probs[order]
    class_mass = np.add.reduceat(sorted_probs, class_starts[:-1])

    # Step 2: base of one replica each, extras proportional to class mass.
    extra_budget = budget - num_videos
    per_class_extra = np.floor(
        class_mass / class_mass.sum() * extra_budget / class_sizes
    ).astype(np.int64)
    per_class_count = np.clip(1 + per_class_extra, 1, num_servers)

    def total(counts_per_class: np.ndarray) -> int:
        return int((counts_per_class * class_sizes).sum())

    # Step 3: spend leftovers from the hottest class down, one increment per
    # class per pass, while it still fits the budget.
    improved = True
    while improved:
        improved = False
        for k in range(num_classes):
            if per_class_count[k] >= num_servers:
                continue
            if total(per_class_count) + class_sizes[k] <= budget:
                per_class_count[k] += 1
                improved = True
    # Invariant (holds by construction, see tests): a hotter class never has
    # fewer replicas than a colder one. Defensive repair keeps Eq. 7 intact.
    while total(per_class_count) > budget:  # pragma: no cover - defensive
        reducible = np.flatnonzero(per_class_count > 1)
        if reducible.size == 0:
            break
        per_class_count[reducible[-1]] -= 1

    counts_sorted = np.repeat(per_class_count, class_sizes)
    counts = np.empty(num_videos, dtype=np.int64)
    counts[order] = counts_sorted

    return ReplicationResult(
        replica_counts=counts,
        num_servers=num_servers,
        popularity=probs,
        info={
            "algorithm": "classification",
            "num_classes": int(num_classes),
            "class_sizes": class_sizes,
            "per_class_count": per_class_count,
        },
    )


class ClassificationReplicator(Replicator):
    """Object-style wrapper around :func:`classification_replication`."""

    name = "classification"

    def __init__(self, *, num_classes: int | None = None) -> None:
        if num_classes is not None:
            check_int_in_range("num_classes", num_classes, 1)
        self._num_classes = num_classes

    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        return classification_replication(
            popularity, num_servers, budget, num_classes=self._num_classes
        )

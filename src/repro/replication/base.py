"""Shared interface and result type for replication algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .._validation import check_int_in_range, check_probability_vector
from ..model.objective import communication_weights

__all__ = ["ReplicationResult", "Replicator", "validate_replication_inputs"]


def validate_replication_inputs(
    popularity: np.ndarray, num_servers: int, budget: int
) -> np.ndarray:
    """Validate ``(p, N, N*C)`` and return the popularity vector.

    The replica budget must admit at least one replica per video (Eq. 7's
    lower bound) and is meaningfully capped at ``N * M`` (full replication).
    """
    probs = check_probability_vector("popularity", popularity)
    check_int_in_range("num_servers", num_servers, 1)
    check_int_in_range("budget", budget, 1)
    num_videos = probs.size
    if budget < num_videos:
        raise ValueError(
            f"replica budget {budget} cannot give each of the {num_videos} "
            "videos one replica (Eq. 7 lower bound)"
        )
    return probs


@dataclass(frozen=True)
class ReplicationResult:
    """Outcome of a replication algorithm.

    Attributes
    ----------
    replica_counts:
        ``r_i`` per video.
    num_servers:
        ``N`` (the cap of Eq. 7).
    popularity:
        The popularity vector the algorithm was run with.
    info:
        Algorithm-specific diagnostics (iterations, tuned parameters,
        optional per-step trace).
    """

    replica_counts: np.ndarray
    num_servers: int
    popularity: np.ndarray = field(repr=False)
    info: dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        counts = np.asarray(self.replica_counts, dtype=np.int64)
        probs = check_probability_vector("popularity", self.popularity)
        if counts.shape != probs.shape:
            raise ValueError("replica_counts and popularity must align")
        if np.any(counts < 1) or np.any(counts > self.num_servers):
            raise ValueError(
                "replica counts must satisfy 1 <= r_i <= N (Eq. 7); got "
                f"range [{counts.min()}, {counts.max()}] with N={self.num_servers}"
            )
        counts = counts.copy()
        counts.setflags(write=False)
        object.__setattr__(self, "replica_counts", counts)
        object.__setattr__(self, "popularity", probs)

    # ------------------------------------------------------------------
    @property
    def num_videos(self) -> int:
        """``M``."""
        return int(self.replica_counts.size)

    @property
    def total_replicas(self) -> int:
        """``sum_i r_i``."""
        return int(self.replica_counts.sum())

    @property
    def replication_degree(self) -> float:
        """Average replicas per video."""
        return self.total_replicas / self.num_videos

    def weights(self) -> np.ndarray:
        """Per-replica communication weights ``w_i = p_i / r_i``."""
        return communication_weights(self.popularity, self.replica_counts)

    def max_weight(self) -> float:
        """The Eq. (8) objective value ``max_i w_i``."""
        return float(self.weights().max())

    def min_weight(self) -> float:
        """Smallest per-replica weight (used by the Theorem 2 bound)."""
        return float(self.weights().min())

    def weight_spread(self) -> float:
        """Theorem 2's load-imbalance bound ``max w - min w``."""
        return self.max_weight() - self.min_weight()


class Replicator(abc.ABC):
    """Interface of a replication algorithm.

    Implementations are stateless (configuration lives in ``__init__``), so
    one instance can be reused across experiment sweeps.
    """

    #: Short machine-friendly name used in experiment tables.
    name: str = "replicator"

    @abc.abstractmethod
    def replicate(
        self, popularity: np.ndarray, num_servers: int, budget: int
    ) -> ReplicationResult:
        """Assign replica counts given popularity, ``N`` and the budget."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

"""Struct-of-arrays request columns for the DES hot loops.

:class:`RequestSoA` is the prepared, per-run form of a
:class:`~repro.workload.requests.RequestTrace`: parallel numpy columns
(arrival times, video ids, stream hold times) plus the horizon cut, built
once per ``run()`` and shared by all three simulation loops — the
optimized :class:`~repro.cluster_sim.simulator.VoDClusterSimulator`, the
clarity-first :class:`~repro.cluster_sim.reference.ReferenceClusterSimulator`
and the audited loop in :mod:`repro.verify.audit`.  Centralizing the
per-request state keeps the loops in lockstep *by construction*: video-id
validation, the watch-time/duration hold rule and the horizon truncation
are computed exactly once, vectorized, instead of three hand-copied
variants that must be edited in sync.

Two views of the same columns are exposed:

* full numpy arrays (:attr:`times` / :attr:`videos` / :attr:`holds`) for
  vectorized consumers — the reference loop and the audit layer's
  reconstruction / monotonicity checks, which deliberately see arrivals
  *past* the horizon too;
* plain-Python lists truncated to the simulated prefix
  (:attr:`times_list` / :attr:`videos_list` / :attr:`holds_list`) for the
  optimized and audited event loops, which never touch numpy scalars on
  the hot path.

The horizon cut is a single ``searchsorted`` over the (validated
non-decreasing) arrival times: an arrival at exactly ``horizon_min`` is
still simulated, everything strictly later is truncated — identical to
the historical per-arrival ``t > horizon_min`` break, minus one branch
per arrival in the hot loop.
"""

from __future__ import annotations

import numpy as np

from ..workload.requests import RequestTrace

__all__ = ["RequestSoA"]


class RequestSoA:
    """Validated, horizon-cut request columns for one simulation run.

    Build with :meth:`from_trace`; the constructor itself trusts its
    inputs (it exists so tests can assemble corner cases directly).
    """

    __slots__ = (
        "times",
        "videos",
        "holds",
        "num_requests",
        "num_simulated",
        "num_truncated",
        "_times_list",
        "_videos_list",
        "_holds_list",
    )

    def __init__(
        self,
        times: np.ndarray,
        videos: np.ndarray,
        holds: np.ndarray,
        num_simulated: int,
    ) -> None:
        self.times = times
        self.videos = videos
        self.holds = holds
        self.num_requests = int(times.size)
        self.num_simulated = int(num_simulated)
        self.num_truncated = self.num_requests - self.num_simulated
        self._times_list: list[float] | None = None
        self._videos_list: list[int] | None = None
        self._holds_list: list[float] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_trace(
        cls,
        trace: RequestTrace,
        durations_min: np.ndarray,
        horizon_min: float,
    ) -> "RequestSoA":
        """Prepare *trace* against a catalog of per-video durations.

        Validates video ids against the catalog (both bounds: a negative
        id would otherwise wrap through numpy's negative indexing into
        the duration/rate tables and silently simulate the wrong videos),
        computes stream hold times — the full video duration (the paper's
        model) or the per-request watch times of an early-departure
        workload, whichever is shorter — and locates the horizon cut.
        """
        times = trace.arrival_min
        videos = trace.videos
        num_videos = int(durations_min.size)
        if times.size:
            if int(videos.min()) < 0:
                raise ValueError(
                    f"trace contains negative video id {int(videos.min())}"
                )
            if int(videos.max()) >= num_videos:
                raise ValueError(
                    "trace references a video outside the collection"
                )
        if trace.watch_min is not None:
            holds = np.minimum(trace.watch_min, durations_min[videos])
        else:
            holds = durations_min[videos]
        # Arrivals are non-decreasing (RequestTrace validates), so the
        # simulated prefix is exactly the count of times <= horizon_min.
        cut = int(np.searchsorted(times, horizon_min, side="right"))
        return cls(times, videos, holds, cut)

    # ------------------------------------------------------------------
    # List views, truncated to the simulated prefix and materialized
    # lazily (the reference loop never asks for them).
    @property
    def times_list(self) -> list[float]:
        if self._times_list is None:
            self._times_list = self.times[: self.num_simulated].tolist()
        return self._times_list

    @property
    def videos_list(self) -> list[int]:
        if self._videos_list is None:
            self._videos_list = self.videos[: self.num_simulated].tolist()
        return self._videos_list

    @property
    def holds_list(self) -> list[float]:
        if self._holds_list is None:
            self._holds_list = self.holds[: self.num_simulated].tolist()
        return self._holds_list

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestSoA(num_requests={self.num_requests}, "
            f"num_simulated={self.num_simulated})"
        )

"""The VoD cluster simulator (Sec. 5's evaluation testbed).

Drives a request trace through the cluster:

1. Requests arrive in time order; each is dispatched to replica holders of
   the requested video by the configured policy (static round robin by
   default, per the paper's model).
2. Admission control: the request is admitted on the first candidate server
   with free outgoing bandwidth; otherwise it is rejected ("a request was
   rejected if required communication bandwidth was unavailable").
3. Admitted streams hold their bandwidth for the video's duration; a
   departure frees it (departures at time ``t`` are processed before
   arrivals at ``t``).
4. Metrics are integrated over a measurement horizon (the peak-period
   length): rejection rate, per-server time-averaged load, peak loads.

With ``backbone_mbps > 0`` the request-redirection extension is active: a
request all of whose replica holders are saturated may be served by *any*
server with free outgoing bandwidth at the additional cost of backbone
bandwidth for the stream's lifetime.

Implementation notes (hot path)
-------------------------------
``run()`` is the per-trial inner loop of every experiment, so it avoids
numpy scalar boxing entirely: arrival times, video ids, hold times, the
rate matrix rows and the per-video best rates are converted to plain
Python lists once per run (or once per simulator for the static tables),
heap events are bare ``(time, kind, seq, payload)`` tuples compared by
CPython's C tuple ordering, and the common DEPARTURE case plus the
admission accounting are inlined instead of dispatching through
:class:`StreamingServer` methods.  The clarity-first original lives on as
:class:`~repro.cluster_sim.reference.ReferenceClusterSimulator`; the two
are bit-identical field for field (see
``tests/test_simulator_equivalence.py``).
"""

from __future__ import annotations

import time
from heapq import heappop, heappush

import numpy as np

from .._validation import check_non_negative, check_positive
from ..model.cluster import ClusterSpec
from ..model.layout import ReplicaLayout
from ..model.video import VideoCollection
from ..workload.requests import RequestTrace
from .dispatch import Dispatcher, StaticRoundRobinDispatcher, failover_order
from .events import EventKind
from .failures import FailoverPolicy, FailureSchedule, RereplicationPolicy
from .metrics import SimulationResult
from .redirection import BackboneLink
from .server import StreamingServer
from .soa import RequestSoA

__all__ = ["VoDClusterSimulator"]

#: Integer event kinds for bare-tuple heap entries (== EventKind values).
_DEPARTURE = int(EventKind.DEPARTURE)
_FAILURE = int(EventKind.FAILURE)
_RECOVERY = int(EventKind.RECOVERY)
_RETRY = int(EventKind.RETRY)
_REPLICATE = int(EventKind.REPLICATE)

#: Admission slack (Mb/s); mirrors ``server._EPS_MBPS``.
_EPS_MBPS = 1e-6

_INF = float("inf")


class VoDClusterSimulator:
    """Simulates one cluster configuration over request traces.

    Parameters
    ----------
    cluster:
        Server capacities (outgoing bandwidth is the modelled bottleneck;
        storage feasibility is a property of the layout, validated once).
    videos:
        Video durations; the streamed bit rate of each video is read from
        the layout (supporting the scalable-rate setting).
    layout:
        The replica placement being evaluated.
    dispatcher_factory:
        Callable building a fresh :class:`Dispatcher` per run; defaults to
        the paper's static round robin.
    backbone_mbps:
        Internal-backbone capacity for the redirection extension; 0
        disables redirection (the paper's base admission control).
    redirection_pods:
        Number of independent backbone partitions (default 1, the
        paper's single shared link).  With ``P > 1`` the cluster is
        split into P contiguous pods — pod ``p`` owns videos
        ``[p*M/P, (p+1)*M/P)`` and servers ``[p*N/P, (p+1)*N/P)`` —
        each with its *own* ``backbone_mbps`` link, and a request may
        only be redirected to a server inside its video's pod.  This is
        exactly the K-shard block system, which is what makes the
        sharded backbone merge exact (see
        :func:`~repro.cluster_sim.sharding.unsharded_equivalent`).
    stream_limits:
        Optional per-server concurrent-stream caps from the disk-subsystem
        model (:mod:`repro.storage`); ``None`` keeps the paper's
        network-only constraint.
    validate_layout:
        Validate the layout against cluster storage once at construction.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        videos: VideoCollection,
        layout: ReplicaLayout,
        *,
        dispatcher_factory=StaticRoundRobinDispatcher,
        backbone_mbps: float = 0.0,
        redirection_pods: int = 1,
        stream_limits: "np.ndarray | list[int] | None" = None,
        validate_layout: bool = True,
    ) -> None:
        if layout.num_videos != videos.num_videos:
            raise ValueError("layout and videos disagree on M")
        if layout.num_servers != cluster.num_servers:
            raise ValueError("layout and cluster disagree on N")
        if stream_limits is not None:
            stream_limits = [int(x) for x in stream_limits]
            if len(stream_limits) != cluster.num_servers:
                raise ValueError(
                    "stream_limits must have one entry per server"
                )
            if any(x < 0 for x in stream_limits):
                raise ValueError("stream_limits must be >= 0")
        self._stream_limits = stream_limits
        check_non_negative("backbone_mbps", backbone_mbps)
        redirection_pods = int(redirection_pods)
        if redirection_pods < 1:
            raise ValueError("redirection_pods must be >= 1")
        if redirection_pods > 1:
            if videos.num_videos % redirection_pods:
                raise ValueError(
                    "redirection_pods must divide the number of videos"
                )
            if cluster.num_servers % redirection_pods:
                raise ValueError(
                    "redirection_pods must divide the number of servers"
                )
        self._redirection_pods = redirection_pods
        if validate_layout:
            # Mixed per-replica rates are a valid runtime configuration
            # (the Sec. 4.3 scalable setting); storage/coverage still hold.
            layout.validate(cluster, videos, allow_mixed_rates=True)
        self._cluster = cluster
        self._videos = videos
        self._layout = layout
        self._dispatcher_factory = dispatcher_factory
        self._backbone_mbps = float(backbone_mbps)
        # Per-replica streamed rates; a stream plays at the rate of the
        # replica that serves it.  Redirected streams (backbone extension)
        # play the video's best available copy.
        self._rate_matrix = layout.rate_matrix
        self._best_rates = layout.video_bit_rates
        self._durations = videos.durations_min
        # Pure-Python lookup tables so the request loop never touches
        # numpy scalars: row lists of per-server rates and per-video
        # best-rate/duration floats.
        self._rate_rows: list[list[float]] = self._rate_matrix.tolist()
        self._best_rates_list: list[float] = self._best_rates.tolist()
        self._durations_list: list[float] = self._durations.tolist()

    # ------------------------------------------------------------------
    @property
    def layout(self) -> ReplicaLayout:
        return self._layout

    # ------------------------------------------------------------------
    def run(
        self,
        trace: RequestTrace,
        *,
        horizon_min: float | None = None,
        failures: FailureSchedule | None = None,
        failover_on_down: bool = False,
        failover: FailoverPolicy | None = None,
        rereplication: RereplicationPolicy | None = None,
        auditors=None,
        observer=None,
    ) -> SimulationResult:
        """Simulate one trace and return the collected metrics.

        Parameters
        ----------
        trace:
            The request trace (the peak-period workload).
        horizon_min:
            Measurement horizon for the time-averaged loads; defaults to
            the last arrival time.  Arrivals beyond the horizon are
            rejected from measurement (they are not simulated).
        failures:
            Optional server-outage schedule (availability extension).  A
            crash drops the server's active streams instantly.
        failover_on_down:
            When True, a request whose dispatched server(s) are *down*
            (not merely saturated) is retried on the video's remaining
            replica holders — the availability benefit replication buys.
            The paper's static model (False) simply rejects it.
        failover:
            Optional :class:`FailoverPolicy` (chaos extension).  A request
            rejected while failures touched its video — some holder down,
            or its replica lost and not yet re-copied — is retried across
            surviving holders after capped exponential backoff, up to the
            policy's retry budget; exhausted budgets (and retries that
            would land past the horizon) count as rejections.  Ignored
            without a non-empty ``failures`` schedule, so attaching a
            policy to a failure-free run changes nothing.
        rereplication:
            Optional :class:`RereplicationPolicy` (chaos extension).  A
            crash loses the server's replicas; after repair they are
            re-copied serially under the policy's migration-bandwidth
            cap, and the server can only serve a video again once its
            copy completes.  Ignored without failures.
        auditors:
            Optional list of :class:`repro.verify.InvariantAuditor`
            checkers.  When non-empty the run is delegated to the audited
            loop (bit-identical results, in-situ invariant checking) and
            any violation raises
            :class:`repro.verify.InvariantViolation`.  ``None``/empty
            keeps this plain hot loop — auditing off costs nothing.
        observer:
            Optional :class:`repro.observe.Observer` (duck-typed).  When
            set, per-server load/stream timelines are sampled every
            ``observer.sample_interval_min`` simulated minutes (the event
            heap is drained to each sample instant first, so snapshots are
            exact) and, with event tracing enabled, every N-th
            arrival/departure is recorded.  The returned result is
            bit-identical to an unobserved run; with ``observer=None`` the
            hot loop's only additions are two constant-false comparisons
            per arrival (see the ``observe`` block of
            ``BENCH_hotpaths.json``).  Ignored on the audited path.
        """
        if auditors:
            # Lazy import: cluster_sim must stay importable without the
            # verify package (and vice versa).
            from ..verify.audit import run_audited

            result, report = run_audited(
                self,
                trace,
                auditors=list(auditors),
                horizon_min=horizon_min,
                failures=failures,
                failover_on_down=failover_on_down,
                failover=failover,
                rereplication=rereplication,
            )
            report.raise_if_failed()
            return result
        start_wall = time.perf_counter()
        if horizon_min is None:
            horizon_min = trace.duration_min if trace.num_requests else 1.0
        check_positive("horizon_min", horizon_min)
        horizon_min = float(horizon_min)

        servers = [
            StreamingServer(
                k,
                spec.bandwidth_mbps,
                max_streams=(
                    self._stream_limits[k] if self._stream_limits else None
                ),
            )
            for k, spec in enumerate(self._cluster)
        ]
        dispatcher: Dispatcher = self._dispatcher_factory(self._layout)
        # Redirection pods: one independent BackboneLink per pod.  P=1 is
        # the paper's single shared backbone; the per-pod indices below
        # all reduce to 0 and the delegate scan covers every server, so
        # the P=1 path is semantically identical to the historical single
        # link (and the backbone-off hot path is untouched).
        pods = self._redirection_pods
        if self._backbone_mbps > 0:
            backbones = [
                BackboneLink(self._backbone_mbps) for _ in range(pods)
            ]
            videos_per_pod = self._videos.num_videos // pods
            servers_per_pod = len(servers) // pods
            pod_servers = [
                servers[p * servers_per_pod : (p + 1) * servers_per_pod]
                for p in range(pods)
            ]
        else:
            backbones = None
        # Bare-tuple event heap: (time, kind, seq, payload).  seq is the
        # insertion-order tiebreak, so tuple comparison never reaches the
        # payload (identical ordering to EventQueue).
        heap: list = []
        seq = 0
        # Backbone bandwidth attributable to redirected streams per server,
        # so a crash can return the right amount in bulk.
        backbone_by_server = [0.0] * len(servers)
        streams_dropped = 0
        events_processed = 0

        # Chaos gating: with no (or an empty) failure schedule every new
        # mechanism is off and the hot loop below is byte-for-byte the
        # failure-free path — the bit-identity the BENCH chaos block gates.
        chaos = failures is not None and len(failures) > 0
        retry_policy = failover if chaos and failover is not None else None
        rerep = rereplication if chaos and rereplication is not None else None
        num_failures = num_recoveries = 0
        num_retries = num_failovers = 0
        num_lost_to_failure = num_rereplicated = 0
        down_since: dict[int, float] = {}
        downtime = [0.0] * len(servers)
        ttr_sum = 0.0

        rate_rows = self._rate_rows
        static_rows = rate_rows
        if rerep is not None:
            # Copy-on-write replica rates: a crash zeroes the server's
            # column entries (replicas lost), a completed re-copy restores
            # the static value.  Admitted streams therefore always carry
            # static rates.
            rate_rows = [row[:] for row in rate_rows]
            lost_by_server: list[list[int]] = [[] for _ in servers]
            videos_of_server: list[list[int]] | None = None

        if failures is not None:
            failures.validate_servers(len(servers))
            for failure in failures:
                # Strict <: a failure at exactly the end of the peak is a
                # no-op rather than a mutation of post-horizon state.
                if failure.time_min < horizon_min:
                    heappush(heap, (failure.time_min, _FAILURE, seq, failure))
                    seq += 1

        dispatcher_holders = dispatcher.holders

        def failure_touched(video: int) -> bool:
            """Whether a failure is implicated in rejecting *video* now."""
            row = rate_rows[video]
            for s in dispatcher_holders(video):
                if row[s] <= 0.0 or not servers[s].is_up:
                    return True
            return False

        def handle_rare(event: tuple, seq: int) -> int:
            """Apply one failure/recovery/retry/re-replication event."""
            nonlocal streams_dropped, num_failures, num_recoveries
            nonlocal num_retries, num_failovers, num_lost_to_failure
            nonlocal num_rereplicated, videos_of_server, ttr_sum
            kind = event[1]
            if kind == _FAILURE:
                failure = event[3]
                k = failure.server
                num_failures += 1
                down_since[k] = event[0]
                streams_dropped += servers[k].fail(event[0])
                if backbones is not None and backbone_by_server[k] > 0:
                    backbones[k // servers_per_pod].release(
                        backbone_by_server[k]
                    )
                    backbone_by_server[k] = 0.0
                if rerep is not None:
                    if videos_of_server is None:
                        videos_of_server = [
                            [
                                v
                                for v in range(len(static_rows))
                                if static_rows[v][s] > 0.0
                            ]
                            for s in range(len(servers))
                        ]
                    lost = lost_by_server[k]
                    for v in videos_of_server[k]:
                        if rate_rows[v][k] > 0.0:
                            rate_rows[v][k] = 0.0
                            lost.append(v)
                recovery = failure.recovery_min
                if recovery < _INF:
                    heappush(heap, (recovery, _RECOVERY, seq, k))
                    seq += 1
            elif kind == _RECOVERY:
                k = event[3]
                tr = event[0]
                servers[k].recover(tr)
                num_recoveries += 1
                delta = tr - down_since.pop(k)
                downtime[k] += delta
                ttr_sum += delta
                if rerep is not None and lost_by_server[k]:
                    from ..dynamic.migration import plan_rereplication

                    lost = lost_by_server[k]
                    plan = plan_rereplication(
                        lost,
                        self._durations_list,
                        {v: static_rows[v][k] for v in lost},
                        migration_mbps=rerep.migration_mbps,
                    )
                    epoch = servers[k].epoch
                    for v, offset in plan:
                        done = tr + offset
                        if done <= horizon_min:
                            heappush(
                                heap, (done, _REPLICATE, seq, (k, v, epoch))
                            )
                            seq += 1
            elif kind == _RETRY:
                video, hold, attempt = event[3]
                tr = event[0]
                row = rate_rows[video]
                saved = False
                for server_id in failover_order(
                    dispatcher_holders(video), servers
                ):
                    rate = row[server_id]
                    if rate > 0.0:
                        server = servers[server_id]
                        if (
                            server.is_up
                            and server.used_mbps + rate
                            <= server.bandwidth_mbps + _EPS_MBPS
                            and (
                                server.max_streams is None
                                or server.active_streams < server.max_streams
                            )
                        ):
                            server.admit(tr, rate)
                            heappush(
                                heap,
                                (tr + hold, _DEPARTURE, seq,
                                 (server_id, rate, False, server.epoch)),
                            )
                            seq += 1
                            num_failovers += 1
                            saved = True
                            break
                if not saved:
                    if attempt < retry_policy.max_retries:
                        nxt = tr + retry_policy.delay_min(attempt)
                        if nxt <= horizon_min:
                            heappush(
                                heap,
                                (nxt, _RETRY, seq, (video, hold, attempt + 1)),
                            )
                            seq += 1
                            num_retries += 1
                            return seq
                    # Retry budget (or horizon) exhausted: a timeout is a
                    # rejection.
                    per_video_rejected[video] += 1
                    if failure_touched(video):
                        num_lost_to_failure += 1
            else:  # _REPLICATE
                k, v, epoch = event[3]
                if servers[k].epoch == epoch:
                    rate_rows[v][k] = static_rows[v][k]
                    lost_by_server[k].remove(v)
                    num_rereplicated += 1
                # else: the server crashed again mid-copy; the replica
                # stays lost and will be re-planned at the next repair.
            return seq

        num_videos = self._videos.num_videos
        per_video_requests = [0] * num_videos
        per_video_rejected = [0] * num_videos

        # Struct-of-arrays request columns: video-id validation, hold
        # times and the horizon cut are computed once, vectorized, and
        # shared verbatim with the reference and audited loops.
        soa = RequestSoA.from_trace(trace, self._durations, horizon_min)
        times_list = soa.times_list
        videos_list = soa.videos_list
        hold_list = soa.holds_list
        num_simulated = soa.num_simulated
        num_truncated = soa.num_truncated

        # Hot-loop locals (attribute lookups hoisted out of the loop;
        # rate_rows was bound above — the COW copy under re-replication).
        best_rates = self._best_rates_list
        candidates_of = dispatcher.candidates
        eps = _EPS_MBPS

        # Observation locals.  With observer=None (the default) both hot
        # guards degenerate to constant-false comparisons: ``t >=
        # next_sample`` with next_sample=inf and ``if trace_every`` with
        # trace_every=0 — the disabled-path budget gated by the
        # ``observe`` block of BENCH_hotpaths.json.
        next_sample = _INF
        trace_every = 0
        if observer is not None:
            interval = float(observer.sample_interval_min)
            if interval > 0.0:
                next_sample = interval
            trace_every = int(observer.trace_event_every)
            samples: list = []
            traced: list = []
            trace_arr_down = trace_dep_down = trace_every

            def _drain_events(limit: float) -> None:
                """Apply heap events at or before *limit* (sampling path).

                Semantics match the inlined drain of the arrival loop, so a
                sample snapshot is exact at its instant and the global
                event order is unchanged: events <= limit <= t are applied
                either way before the next arrival is admitted.  The
                departure branch mirrors the hot loop's inlined release —
                with periodic sampling most departures flow through here,
                so a method-call release would dominate the metrics-on
                overhead budget.
                """
                nonlocal seq, events_processed, trace_dep_down
                while heap and heap[0][0] <= limit:
                    event = heappop(heap)
                    events_processed += 1
                    if event[1] == _DEPARTURE:
                        dep_server, dep_rate, dep_redirected, dep_epoch = event[3]
                        server = servers[dep_server]
                        if server.epoch != dep_epoch:
                            continue
                        etime = event[0]
                        last = server._last_time_min
                        if etime > last:
                            server._load_integral += server.used_mbps * (
                                etime - last
                            )
                            server._last_time_min = etime
                        used = server.used_mbps - dep_rate
                        if used < 0.0:
                            if used < -eps:
                                raise RuntimeError(
                                    f"server {dep_server} bandwidth "
                                    "accounting went negative"
                                )
                            used = 0.0
                        server.used_mbps = used
                        server.active_streams -= 1
                        if dep_redirected:
                            backbones[dep_server // servers_per_pod].release(
                                dep_rate
                            )
                            backbone_by_server[dep_server] -= dep_rate
                        if trace_every:
                            trace_dep_down -= 1
                            if not trace_dep_down:
                                trace_dep_down = trace_every
                                traced.append(("departure", etime, dep_server))
                    else:
                        seq = handle_rare(event, seq)

            def _record_sample(at: float, arrivals_done: int) -> None:
                samples.append(
                    (
                        at,
                        [s.used_mbps for s in servers],
                        [s.active_streams for s in servers],
                        arrivals_done,
                        sum(per_video_rejected),
                        sum(b.redirected_streams for b in backbones)
                        if backbones is not None
                        else 0,
                        sum(b.used_mbps for b in backbones)
                        if backbones is not None
                        else 0.0,
                    )
                )

        # Arrivals past the horizon were pre-truncated by the SoA cut (an
        # arrival at exactly ``horizon_min`` is still simulated), so the
        # loop carries no per-arrival horizon branch.
        for index in range(num_simulated):
            t = times_list[index]
            if t >= next_sample:
                # Observation sampling (never taken when disabled): drain
                # events up to each boundary, snapshot, advance.
                while next_sample <= t:
                    _drain_events(next_sample)
                    _record_sample(next_sample, index)
                    next_sample += interval
            video = videos_list[index]

            # Apply departures/failures/recoveries at or before t.  The
            # DEPARTURE case (release + integral update) is inlined; the
            # rare kinds go through handle_rare.
            while heap and heap[0][0] <= t:
                event = heappop(heap)
                events_processed += 1
                if event[1] == _DEPARTURE:
                    server_id, rate, redirected, epoch = event[3]
                    server = servers[server_id]
                    if server.epoch != epoch:
                        continue  # stream already dropped by a crash
                    etime = event[0]
                    last = server._last_time_min
                    if etime > last:
                        server._load_integral += server.used_mbps * (etime - last)
                        server._last_time_min = etime
                    used = server.used_mbps - rate
                    if used < 0.0:
                        if used < -eps:
                            raise RuntimeError(
                                f"server {server_id} bandwidth accounting "
                                "went negative"
                            )
                        used = 0.0
                    server.used_mbps = used
                    server.active_streams -= 1
                    if redirected:
                        backbones[server_id // servers_per_pod].release(rate)
                        backbone_by_server[server_id] -= rate
                    if trace_every:
                        trace_dep_down -= 1
                        if not trace_dep_down:
                            trace_dep_down = trace_every
                            traced.append(("departure", etime, server_id))
                else:
                    seq = handle_rare(event, seq)

            events_processed += 1
            per_video_requests[video] += 1
            if best_rates[video] <= 0.0:
                # Video has no replica anywhere: nothing can serve it.
                per_video_rejected[video] += 1
                if trace_every:
                    trace_arr_down -= 1
                    if not trace_arr_down:
                        trace_arr_down = trace_every
                        traced.append(("arrival", t, video, False))
                continue
            end_time = t + hold_list[index]

            if failover_on_down and chaos:
                # Without failure events no server is ever down, so the
                # scan below is a no-op — skip it to keep the failure-free
                # path on the plain hot path (BENCH chaos budget).
                candidates = list(candidates_of(video, servers))
                if any(not servers[s].is_up for s in candidates):
                    # Replication's availability payoff: retry the remaining
                    # holders when the dispatched server has crashed.
                    extra = [
                        s
                        for s in dispatcher.holders(video)
                        if s not in candidates
                    ]
                    extra.sort(key=lambda s: servers[s].utilization)
                    candidates.extend(extra)
            else:
                candidates = candidates_of(video, servers)

            admitted = False
            row = rate_rows[video]
            for server_id in candidates:
                rate = row[server_id]
                if rate > 0.0:
                    server = servers[server_id]
                    if (
                        server.is_up
                        and server.used_mbps + rate
                        <= server.bandwidth_mbps + eps
                        and (
                            server.max_streams is None
                            or server.active_streams < server.max_streams
                        )
                    ):
                        # Inlined StreamingServer.admit.
                        last = server._last_time_min
                        if t > last:
                            server._load_integral += server.used_mbps * (t - last)
                            server._last_time_min = t
                        used = server.used_mbps + rate
                        server.used_mbps = used
                        server.active_streams += 1
                        server.served_requests += 1
                        if used > server.peak_load_mbps:
                            server.peak_load_mbps = used
                        heappush(
                            heap,
                            (end_time, _DEPARTURE, seq,
                             (server_id, rate, False, server.epoch)),
                        )
                        seq += 1
                        admitted = True
                        break

            if not admitted and backbones is not None and (
                rerep is None or any(row[s] > 0.0 for s in dispatcher_holders(video))
            ):
                # Redirection: any server in the video's pod with free
                # outgoing bandwidth may stream the video's best copy over
                # the pod's backbone — gated, under re-replication, on
                # some replica actually existing.
                rate = best_rates[video]
                pod = video // videos_per_pod
                backbone = backbones[pod]
                if backbone.used_mbps + rate <= backbone.capacity_mbps + eps:
                    delegate = None
                    best_util = _INF
                    for server in pod_servers[pod]:
                        if (
                            server.is_up
                            and server.used_mbps + rate
                            <= server.bandwidth_mbps + eps
                            and (
                                server.max_streams is None
                                or server.active_streams < server.max_streams
                            )
                        ):
                            util = server.used_mbps / server.bandwidth_mbps
                            if util < best_util:
                                delegate = server
                                best_util = util
                    if delegate is not None:
                        delegate_id = delegate.server_id
                        backbone.acquire(rate)
                        backbone_by_server[delegate_id] += rate
                        last = delegate._last_time_min
                        if t > last:
                            delegate._load_integral += delegate.used_mbps * (t - last)
                            delegate._last_time_min = t
                        used = delegate.used_mbps + rate
                        delegate.used_mbps = used
                        delegate.active_streams += 1
                        delegate.served_requests += 1
                        if used > delegate.peak_load_mbps:
                            delegate.peak_load_mbps = used
                        heappush(
                            heap,
                            (end_time, _DEPARTURE, seq,
                             (delegate_id, rate, True, delegate.epoch)),
                        )
                        seq += 1
                        admitted = True

            if not admitted:
                if retry_policy is not None and (
                    retry_policy.retry_saturated or failure_touched(video)
                ):
                    nxt = t + retry_policy.delay_min(0)
                    if nxt <= horizon_min:
                        # Failover retry: the request waits out a backoff
                        # and re-tries surviving holders; the verdict
                        # (served or rejected) lands when the RETRY event
                        # resolves, always within the horizon.
                        heappush(
                            heap,
                            (nxt, _RETRY, seq, (video, hold_list[index], 1)),
                        )
                        seq += 1
                        num_retries += 1
                    else:
                        per_video_rejected[video] += 1
                        if failure_touched(video):
                            num_lost_to_failure += 1
                else:
                    per_video_rejected[video] += 1
                    if chaos and failure_touched(video):
                        num_lost_to_failure += 1
            if trace_every:
                trace_arr_down -= 1
                if not trace_arr_down:
                    trace_arr_down = trace_every
                    traced.append(("arrival", t, video, admitted))

        # Close out the observation timeline up to the horizon (sampling
        # drains preserve event order; the loop below sees the remainder).
        if next_sample <= horizon_min:
            arrivals_done = num_simulated
            while next_sample <= horizon_min:
                _drain_events(next_sample)
                _record_sample(next_sample, arrivals_done)
                next_sample += interval

        # Apply remaining events inside the horizon, close the integrals.
        while heap and heap[0][0] <= horizon_min:
            event = heappop(heap)
            events_processed += 1
            if event[1] == _DEPARTURE:
                server_id, rate, redirected, epoch = event[3]
                server = servers[server_id]
                if server.epoch != epoch:
                    continue
                server.release(event[0], rate)
                if redirected:
                    backbones[server_id // servers_per_pod].release(rate)
                    backbone_by_server[server_id] -= rate
                if trace_every:
                    trace_dep_down -= 1
                    if not trace_dep_down:
                        trace_dep_down = trace_every
                        traced.append(("departure", event[0], server_id))
            else:
                seq = handle_rare(event, seq)
        for server in servers:
            server.advance(horizon_min)
        # Servers still down at the horizon accrue downtime to its edge.
        for k, since in down_since.items():
            downtime[k] += horizon_min - since

        result = SimulationResult(
            num_requests=sum(per_video_requests),
            num_rejected=sum(per_video_rejected),
            per_video_requests=np.asarray(per_video_requests, dtype=np.int64),
            per_video_rejected=np.asarray(per_video_rejected, dtype=np.int64),
            server_time_avg_load_mbps=np.array(
                [s.time_avg_load_mbps(horizon_min) for s in servers]
            ),
            server_peak_load_mbps=np.array([s.peak_load_mbps for s in servers]),
            server_served=np.array([s.served_requests for s in servers]),
            server_bandwidth_mbps=self._cluster.bandwidth_mbps,
            horizon_min=horizon_min,
            num_redirected=(
                sum(b.redirected_streams for b in backbones)
                if backbones is not None
                else 0
            ),
            streams_dropped=streams_dropped,
            num_truncated=num_truncated,
            num_events=events_processed,
            num_failures=num_failures,
            num_recoveries=num_recoveries,
            num_retries=num_retries,
            num_failovers=num_failovers,
            num_lost_to_failure=num_lost_to_failure,
            num_rereplicated=num_rereplicated,
            mean_time_to_recovery_min=(
                ttr_sum / num_recoveries if num_recoveries else 0.0
            ),
            server_downtime_min=np.asarray(downtime),
            wall_time_sec=time.perf_counter() - start_wall,
        )
        if observer is not None:
            observer.record_simulation(
                samples=samples,
                traced_events=traced,
                result=result,
                server_bandwidth_mbps=self._cluster.bandwidth_mbps.tolist(),
            )
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _least_utilized_with_room(
        servers: list[StreamingServer], rate: float
    ) -> int | None:
        """Least-utilized server that can carry one more stream, if any."""
        best: int | None = None
        best_util = _INF
        for server in servers:
            if server.can_admit(rate) and server.utilization < best_util:
                best = server.server_id
                best_util = server.utilization
        return best

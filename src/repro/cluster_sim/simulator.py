"""The VoD cluster simulator (Sec. 5's evaluation testbed).

Drives a request trace through the cluster:

1. Requests arrive in time order; each is dispatched to replica holders of
   the requested video by the configured policy (static round robin by
   default, per the paper's model).
2. Admission control: the request is admitted on the first candidate server
   with free outgoing bandwidth; otherwise it is rejected ("a request was
   rejected if required communication bandwidth was unavailable").
3. Admitted streams hold their bandwidth for the video's duration; a
   departure frees it (departures at time ``t`` are processed before
   arrivals at ``t``).
4. Metrics are integrated over a measurement horizon (the peak-period
   length): rejection rate, per-server time-averaged load, peak loads.

With ``backbone_mbps > 0`` the request-redirection extension is active: a
request all of whose replica holders are saturated may be served by *any*
server with free outgoing bandwidth at the additional cost of backbone
bandwidth for the stream's lifetime.
"""

from __future__ import annotations

import time

import numpy as np

from .._validation import check_non_negative, check_positive
from ..model.cluster import ClusterSpec
from ..model.layout import ReplicaLayout
from ..model.video import VideoCollection
from ..workload.requests import RequestTrace
from .dispatch import Dispatcher, StaticRoundRobinDispatcher
from .events import EventKind, EventQueue
from .failures import FailureSchedule
from .metrics import SimulationResult
from .redirection import BackboneLink
from .server import StreamingServer

__all__ = ["VoDClusterSimulator"]


class VoDClusterSimulator:
    """Simulates one cluster configuration over request traces.

    Parameters
    ----------
    cluster:
        Server capacities (outgoing bandwidth is the modelled bottleneck;
        storage feasibility is a property of the layout, validated once).
    videos:
        Video durations; the streamed bit rate of each video is read from
        the layout (supporting the scalable-rate setting).
    layout:
        The replica placement being evaluated.
    dispatcher_factory:
        Callable building a fresh :class:`Dispatcher` per run; defaults to
        the paper's static round robin.
    backbone_mbps:
        Internal-backbone capacity for the redirection extension; 0
        disables redirection (the paper's base admission control).
    stream_limits:
        Optional per-server concurrent-stream caps from the disk-subsystem
        model (:mod:`repro.storage`); ``None`` keeps the paper's
        network-only constraint.
    validate_layout:
        Validate the layout against cluster storage once at construction.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        videos: VideoCollection,
        layout: ReplicaLayout,
        *,
        dispatcher_factory=StaticRoundRobinDispatcher,
        backbone_mbps: float = 0.0,
        stream_limits: "np.ndarray | list[int] | None" = None,
        validate_layout: bool = True,
    ) -> None:
        if layout.num_videos != videos.num_videos:
            raise ValueError("layout and videos disagree on M")
        if layout.num_servers != cluster.num_servers:
            raise ValueError("layout and cluster disagree on N")
        if stream_limits is not None:
            stream_limits = [int(x) for x in stream_limits]
            if len(stream_limits) != cluster.num_servers:
                raise ValueError(
                    "stream_limits must have one entry per server"
                )
            if any(x < 0 for x in stream_limits):
                raise ValueError("stream_limits must be >= 0")
        self._stream_limits = stream_limits
        check_non_negative("backbone_mbps", backbone_mbps)
        if validate_layout:
            # Mixed per-replica rates are a valid runtime configuration
            # (the Sec. 4.3 scalable setting); storage/coverage still hold.
            layout.validate(cluster, videos, allow_mixed_rates=True)
        self._cluster = cluster
        self._videos = videos
        self._layout = layout
        self._dispatcher_factory = dispatcher_factory
        self._backbone_mbps = float(backbone_mbps)
        # Per-replica streamed rates; a stream plays at the rate of the
        # replica that serves it.  Redirected streams (backbone extension)
        # play the video's best available copy.
        self._rate_matrix = layout.rate_matrix
        self._best_rates = layout.video_bit_rates
        self._durations = videos.durations_min

    # ------------------------------------------------------------------
    @property
    def layout(self) -> ReplicaLayout:
        return self._layout

    # ------------------------------------------------------------------
    def run(
        self,
        trace: RequestTrace,
        *,
        horizon_min: float | None = None,
        failures: FailureSchedule | None = None,
        failover_on_down: bool = False,
    ) -> SimulationResult:
        """Simulate one trace and return the collected metrics.

        Parameters
        ----------
        trace:
            The request trace (the peak-period workload).
        horizon_min:
            Measurement horizon for the time-averaged loads; defaults to
            the last arrival time.  Arrivals beyond the horizon are
            rejected from measurement (they are not simulated).
        failures:
            Optional server-outage schedule (availability extension).  A
            crash drops the server's active streams instantly.
        failover_on_down:
            When True, a request whose dispatched server(s) are *down*
            (not merely saturated) is retried on the video's remaining
            replica holders — the availability benefit replication buys.
            The paper's static model (False) simply rejects it.
        """
        start_wall = time.perf_counter()
        if horizon_min is None:
            horizon_min = trace.duration_min if trace.num_requests else 1.0
        check_positive("horizon_min", horizon_min)

        servers = [
            StreamingServer(
                k,
                spec.bandwidth_mbps,
                max_streams=(
                    self._stream_limits[k] if self._stream_limits else None
                ),
            )
            for k, spec in enumerate(self._cluster)
        ]
        dispatcher: Dispatcher = self._dispatcher_factory(self._layout)
        backbone = (
            BackboneLink(self._backbone_mbps) if self._backbone_mbps > 0 else None
        )
        events = EventQueue()
        # Backbone bandwidth attributable to redirected streams per server,
        # so a crash can return the right amount in bulk.
        backbone_by_server = np.zeros(len(servers))
        streams_dropped = 0
        events_processed = 0

        if failures is not None:
            failures.validate_servers(len(servers))
            for failure in failures:
                if failure.time_min <= horizon_min:
                    events.push(failure.time_min, EventKind.FAILURE, failure)

        def handle(event) -> None:
            """Apply one departure/failure/recovery event."""
            nonlocal streams_dropped, events_processed
            events_processed += 1
            if event.kind is EventKind.DEPARTURE:
                server_id, rate, redirected, epoch = event.payload
                server = servers[server_id]
                if server.epoch != epoch:
                    return  # stream already dropped by a crash
                server.release(event.time, rate)
                if redirected and backbone is not None:
                    backbone.release(rate)
                    backbone_by_server[server_id] -= rate
            elif event.kind is EventKind.FAILURE:
                failure = event.payload
                streams_dropped += servers[failure.server].fail(event.time)
                if backbone is not None and backbone_by_server[failure.server] > 0:
                    backbone.release(float(backbone_by_server[failure.server]))
                    backbone_by_server[failure.server] = 0.0
                if np.isfinite(failure.recovery_min):
                    events.push(failure.recovery_min, EventKind.RECOVERY, failure.server)
            elif event.kind is EventKind.RECOVERY:
                servers[event.payload].recover(event.time)

        def drain(until: float) -> None:
            """Handle every queued event up to *until* (inclusive).

            Re-checks the queue after each event because handling a
            failure schedules its recovery, which may also fall inside
            the window.
            """
            while events and events.peek().time <= until:
                handle(events.pop())

        num_videos = self._videos.num_videos
        per_video_requests = np.zeros(num_videos, dtype=np.int64)
        per_video_rejected = np.zeros(num_videos, dtype=np.int64)

        times = trace.arrival_min
        videos = trace.videos
        if times.size:
            # Both bounds: a negative id would otherwise wrap through
            # NumPy's negative indexing into ``self._durations`` and the
            # rate matrix and silently simulate the wrong videos.
            if int(videos.min()) < 0:
                raise ValueError(
                    f"trace contains negative video id {int(videos.min())}"
                )
            if int(videos.max()) >= num_videos:
                raise ValueError("trace references a video outside the collection")
        # Stream hold times: the full video duration (the paper's model) or
        # the per-request watch times of an early-departure workload.
        if trace.watch_min is not None:
            hold_min = np.minimum(trace.watch_min, self._durations[videos])
        else:
            hold_min = self._durations[videos]

        num_truncated = 0
        for index, (t, video) in enumerate(zip(times, videos)):
            t = float(t)
            if t > horizon_min:
                # Arrivals are time-ordered: everything from here on is
                # strictly past the horizon.  An arrival at exactly
                # ``horizon_min`` is still simulated.
                num_truncated = int(times.size - index)
                break
            video = int(video)
            # Apply departures/failures/recoveries at or before t.
            drain(t)

            events_processed += 1
            per_video_requests[video] += 1
            if self._best_rates[video] <= 0.0:
                # Video has no replica anywhere: nothing can serve it.
                per_video_rejected[video] += 1
                continue
            end_time = t + float(hold_min[index])

            candidates = list(dispatcher.candidates(video, servers))
            if failover_on_down and any(
                not servers[s].is_up for s in candidates
            ):
                # Replication's availability payoff: retry the remaining
                # holders when the dispatched server has crashed.
                extra = [
                    int(s)
                    for s in dispatcher.holders(video)
                    if int(s) not in candidates
                ]
                extra.sort(key=lambda s: servers[s].utilization)
                candidates.extend(extra)

            admitted = False
            for server_id in candidates:
                rate = float(self._rate_matrix[video, server_id])
                if rate > 0.0 and servers[server_id].can_admit(rate):
                    server = servers[server_id]
                    server.admit(t, rate)
                    events.push(
                        end_time,
                        EventKind.DEPARTURE,
                        (server_id, rate, False, server.epoch),
                    )
                    admitted = True
                    break

            if not admitted and backbone is not None:
                # Redirection: any server with free outgoing bandwidth may
                # stream the video's best copy over the backbone.
                rate = float(self._best_rates[video])
                if backbone.can_carry(rate):
                    delegate = self._least_utilized_with_room(servers, rate)
                    if delegate is not None:
                        backbone.acquire(rate)
                        backbone_by_server[delegate] += rate
                        servers[delegate].admit(t, rate)
                        events.push(
                            end_time,
                            EventKind.DEPARTURE,
                            (delegate, rate, True, servers[delegate].epoch),
                        )
                        admitted = True

            if not admitted:
                per_video_rejected[video] += 1

        # Apply remaining events inside the horizon, close the integrals.
        drain(horizon_min)
        for server in servers:
            server.advance(horizon_min)

        return SimulationResult(
            num_requests=int(per_video_requests.sum()),
            num_rejected=int(per_video_rejected.sum()),
            per_video_requests=per_video_requests,
            per_video_rejected=per_video_rejected,
            server_time_avg_load_mbps=np.array(
                [s.time_avg_load_mbps(horizon_min) for s in servers]
            ),
            server_peak_load_mbps=np.array([s.peak_load_mbps for s in servers]),
            server_served=np.array([s.served_requests for s in servers]),
            server_bandwidth_mbps=self._cluster.bandwidth_mbps,
            horizon_min=float(horizon_min),
            num_redirected=backbone.redirected_streams if backbone else 0,
            streams_dropped=streams_dropped,
            num_truncated=num_truncated,
            num_events=events_processed,
            wall_time_sec=time.perf_counter() - start_wall,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _least_utilized_with_room(
        servers: list[StreamingServer], rate: float
    ) -> int | None:
        """Least-utilized server that can carry one more stream, if any."""
        best: int | None = None
        best_util = np.inf
        for server in servers:
            if server.can_admit(rate) and server.utilization < best_util:
                best = server.server_id
                best_util = server.utilization
        return best

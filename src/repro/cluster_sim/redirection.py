"""Backbone request-redirection extension (system S15).

The paper's conclusion points to a companion runtime strategy [19]: when the
server selected for a request has no outgoing bandwidth left, the cluster's
*internal backbone* can ship the video data from the replica-holding server
to another back-end whose outgoing link still has room, so the request is
served instead of rejected.  The cost is backbone bandwidth held for the
stream's duration plus the delegate server's outgoing bandwidth.

:class:`BackboneLink` models the shared backbone as a single capacity pool;
the simulator consults it when constructed with ``backbone_mbps > 0``.
"""

from __future__ import annotations

from .._validation import check_non_negative

__all__ = ["BackboneLink"]


class BackboneLink:
    """Shared internal-backbone capacity pool."""

    __slots__ = ("capacity_mbps", "used_mbps", "redirected_streams")

    def __init__(self, capacity_mbps: float) -> None:
        check_non_negative("capacity_mbps", capacity_mbps)
        self.capacity_mbps = float(capacity_mbps)
        self.used_mbps = 0.0
        self.redirected_streams = 0

    def can_carry(self, rate_mbps: float) -> bool:
        """Whether the backbone can absorb one more redirected stream."""
        return self.used_mbps + rate_mbps <= self.capacity_mbps + 1e-6

    def acquire(self, rate_mbps: float) -> None:
        """Reserve backbone bandwidth for a redirected stream."""
        if not self.can_carry(rate_mbps):
            raise RuntimeError("backbone over-committed")
        self.used_mbps += rate_mbps
        self.redirected_streams += 1

    def release(self, rate_mbps: float) -> None:
        """Return backbone bandwidth when a redirected stream ends."""
        self.used_mbps -= rate_mbps
        if self.used_mbps < -1e-6:
            raise RuntimeError("backbone accounting went negative")
        self.used_mbps = max(self.used_mbps, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BackboneLink(used={self.used_mbps:.0f}/{self.capacity_mbps:.0f} Mb/s)"
        )

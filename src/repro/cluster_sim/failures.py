"""Server-failure schedules — availability extension.

The paper motivates replication partly by *availability*: "Multiple
replicas also offer the flexibility in reconfiguration" and distributed
storage "can offer ... higher reliability".  This module quantifies that:
a :class:`FailureSchedule` crashes servers at given times (dropping their
active streams) and optionally recovers them later; the simulator then
measures dropped streams and the extra rejections a failure causes, as a
function of the replication degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

import numpy as np

from .._validation import check_int_in_range, check_non_negative, check_positive

__all__ = ["FailureEvent", "FailureSchedule"]


@dataclass(frozen=True)
class FailureEvent:
    """One server outage: down at ``time_min``, back after ``down_min``.

    ``down_min = inf`` means the server never returns within the run.
    """

    time_min: float
    server: int
    down_min: float = float("inf")

    def __post_init__(self) -> None:
        check_non_negative("time_min", self.time_min)
        check_int_in_range("server", self.server, 0)
        if not self.down_min > 0:
            raise ValueError(f"down_min must be > 0, got {self.down_min}")

    @property
    def recovery_min(self) -> float:
        """Absolute recovery time (may be inf)."""
        return self.time_min + self.down_min


class FailureSchedule:
    """A time-ordered set of :class:`FailureEvent` entries.

    Overlapping outages of the *same* server are rejected — a down server
    cannot fail again before recovering.
    """

    def __init__(self, events: Iterable[FailureEvent]) -> None:
        events = sorted(events, key=lambda e: e.time_min)
        busy_until: dict[int, float] = {}
        for event in events:
            # <= rather than <: at equal timestamps the simulator processes
            # FAILURE before RECOVERY, so a failure at the exact recovery
            # instant would still hit a down server.
            if event.time_min <= busy_until.get(event.server, -1.0):
                raise ValueError(
                    f"server {event.server} fails at {event.time_min} while "
                    "still down from a previous failure"
                )
            busy_until[event.server] = event.recovery_min
        self._events = tuple(events)

    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls, time_min: float, server: int, down_min: float = float("inf")
    ) -> "FailureSchedule":
        """One server fails once — the canonical availability experiment."""
        return cls([FailureEvent(time_min, server, down_min)])

    @classmethod
    def random(
        cls,
        num_servers: int,
        horizon_min: float,
        rng: np.random.Generator,
        *,
        mtbf_min: float,
        mttr_min: float | None = None,
    ) -> "FailureSchedule":
        """Poisson failures: cluster-wide rate ``num_servers / mtbf_min``.

        Each failure hits a uniformly random *currently-up* server and (if
        ``mttr_min`` is given) heals after an exponential repair time.
        """
        check_int_in_range("num_servers", num_servers, 1)
        check_positive("horizon_min", horizon_min)
        check_positive("mtbf_min", mtbf_min)
        if mttr_min is not None:
            check_positive("mttr_min", mttr_min)

        events: list[FailureEvent] = []
        busy_until = np.zeros(num_servers)
        t = 0.0
        rate = num_servers / mtbf_min
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= horizon_min:
                break
            up = np.flatnonzero(busy_until < t)
            if up.size == 0:
                continue
            server = int(rng.choice(up))
            down = (
                float(rng.exponential(mttr_min))
                if mttr_min is not None
                else float("inf")
            )
            events.append(FailureEvent(t, server, down))
            busy_until[server] = t + down
        return cls(events)

    @classmethod
    def none(cls) -> "FailureSchedule":
        """No failures (the paper's base setting)."""
        return cls([])

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def validate_servers(self, num_servers: int) -> None:
        """Check all events reference servers within the cluster."""
        for event in self._events:
            if event.server >= num_servers:
                raise ValueError(
                    f"failure targets server {event.server} but the cluster "
                    f"has {num_servers} servers"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FailureSchedule(events={len(self._events)})"

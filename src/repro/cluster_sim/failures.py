"""Server-failure schedules and recovery policies — chaos extension.

The paper motivates replication partly by *availability*: "Multiple
replicas also offer the flexibility in reconfiguration" and distributed
storage "can offer ... higher reliability".  This module quantifies that:

* :class:`FailureSchedule` crashes servers at given times (dropping their
  active streams) and optionally recovers them later.  Schedules come
  from three generative models — independent cluster-wide Poisson
  failures (:meth:`FailureSchedule.random`), correlated rack/group
  failures (:meth:`FailureSchedule.correlated`), and per-server
  MTBF/MTTR renewal processes with deterministic SeedSequence streams
  (:meth:`FailureSchedule.mtbf_process`).
* :class:`FailoverPolicy` configures retry-with-backoff dispatch: a
  request rejected while some replica holder is dead (or, with
  ``retry_saturated``, merely saturated) is re-tried across surviving
  holders after a capped exponential backoff, up to a retry budget.
  Retries that exhaust the budget (or the horizon) count as rejections.
* :class:`RereplicationPolicy` enables repair-driven re-replication: a
  recovering server re-copies the replicas it lost, serialized under a
  migration-bandwidth cap, and can only serve a video again once its
  copy completes.
* :class:`FailureSpec` is the declarative form used by the pipeline
  facade and CLI (``--failures single:t=30,server=0``); it builds a
  concrete schedule per run with SeedSequence-derived determinism.

The simulator measures dropped streams, requests lost to failures,
per-server downtime and time-to-recovery as a function of the
replication degree (see ``repro/experiments/availability.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from .._validation import check_int_in_range, check_non_negative, check_positive

__all__ = [
    "FailureEvent",
    "FailureSchedule",
    "FailoverPolicy",
    "RereplicationPolicy",
    "FailureSpec",
]

#: Spawn-key namespace tag for failure-schedule RNG streams, so failure
#: draws can never collide with workload/trace streams of the same seed.
_FAILURE_SPAWN_TAG = 0xFA11


@dataclass(frozen=True)
class FailureEvent:
    """One server outage: down at ``time_min``, back after ``down_min``.

    ``down_min = inf`` means the server never returns within the run.
    """

    time_min: float
    server: int
    down_min: float = float("inf")

    def __post_init__(self) -> None:
        check_non_negative("time_min", self.time_min)
        check_int_in_range("server", self.server, 0)
        if not self.down_min > 0:
            raise ValueError(f"down_min must be > 0, got {self.down_min}")

    @property
    def recovery_min(self) -> float:
        """Absolute recovery time (may be inf)."""
        return self.time_min + self.down_min


class FailureSchedule:
    """A time-ordered set of :class:`FailureEvent` entries.

    Overlapping outages of the *same* server are rejected — a down server
    cannot fail again before recovering.  A failure at *exactly* the
    recovery instant is allowed: the simulator processes RECOVERY before
    FAILURE at equal timestamps, so the server flickers up (empty) and
    immediately crashes again.
    """

    def __init__(self, events: Iterable[FailureEvent]) -> None:
        events = sorted(events, key=lambda e: e.time_min)
        busy_until: dict[int, float] = {}
        for event in events:
            # Strict <: at equal timestamps the simulator processes
            # RECOVERY before FAILURE, so a failure at the exact recovery
            # instant hits an up server (see EventKind).
            if event.time_min < busy_until.get(event.server, -1.0):
                raise ValueError(
                    f"server {event.server} fails at {event.time_min} while "
                    "still down from a previous failure"
                )
            busy_until[event.server] = event.recovery_min
        self._events = tuple(events)

    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls, time_min: float, server: int, down_min: float = float("inf")
    ) -> "FailureSchedule":
        """One server fails once — the canonical availability experiment."""
        return cls([FailureEvent(time_min, server, down_min)])

    @classmethod
    def random(
        cls,
        num_servers: int,
        horizon_min: float,
        rng: np.random.Generator,
        *,
        mtbf_min: float,
        mttr_min: float | None = None,
    ) -> "FailureSchedule":
        """Poisson failures: cluster-wide rate ``num_servers / mtbf_min``.

        Each failure hits a uniformly random *currently-up* server and (if
        ``mttr_min`` is given) heals after an exponential repair time.
        """
        check_int_in_range("num_servers", num_servers, 1)
        check_positive("horizon_min", horizon_min)
        check_positive("mtbf_min", mtbf_min)
        if mttr_min is not None:
            check_positive("mttr_min", mttr_min)

        events: list[FailureEvent] = []
        busy_until = np.zeros(num_servers)
        t = 0.0
        rate = num_servers / mtbf_min
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= horizon_min:
                break
            up = np.flatnonzero(busy_until < t)
            if up.size == 0:
                continue
            server = int(rng.choice(up))
            down = (
                float(rng.exponential(mttr_min))
                if mttr_min is not None
                else float("inf")
            )
            events.append(FailureEvent(t, server, down))
            busy_until[server] = t + down
        return cls(events)

    @classmethod
    def correlated(
        cls,
        groups: Sequence[Sequence[int]],
        horizon_min: float,
        rng: np.random.Generator,
        *,
        mtbf_min: float,
        mttr_min: float | None = None,
    ) -> "FailureSchedule":
        """Correlated rack/group failures: each group crashes as a unit.

        Failure epochs arrive as a Poisson process of cluster-wide rate
        ``len(groups) / mtbf_min``; each epoch takes down one uniformly
        random *fully-up* group, all members simultaneously, sharing one
        exponential repair draw (the rack's power/switch comes back for
        everyone at once).  Groups with any member still down are skipped,
        mirroring :meth:`random`'s up-server filter.
        """
        groups = [tuple(int(s) for s in g) for g in groups]
        if not groups or any(not g for g in groups):
            raise ValueError("groups must be non-empty lists of server ids")
        flat = [s for g in groups for s in g]
        if len(set(flat)) != len(flat):
            raise ValueError("a server may belong to at most one group")
        check_positive("horizon_min", horizon_min)
        check_positive("mtbf_min", mtbf_min)
        if mttr_min is not None:
            check_positive("mttr_min", mttr_min)

        events: list[FailureEvent] = []
        busy_until = {s: 0.0 for s in flat}
        t = 0.0
        rate = len(groups) / mtbf_min
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= horizon_min:
                break
            up_groups = [
                gi
                for gi, g in enumerate(groups)
                if all(busy_until[s] < t for s in g)
            ]
            if not up_groups:
                continue
            group = groups[int(rng.choice(np.asarray(up_groups)))]
            down = (
                float(rng.exponential(mttr_min))
                if mttr_min is not None
                else float("inf")
            )
            for server in group:
                events.append(FailureEvent(t, server, down))
                busy_until[server] = t + down
        return cls(events)

    @classmethod
    def mtbf_process(
        cls,
        num_servers: int,
        horizon_min: float,
        *,
        mtbf_min: float,
        mttr_min: float,
        entropy: int,
        spawn_prefix: tuple[int, ...] = (),
    ) -> "FailureSchedule":
        """Independent per-server MTBF/MTTR renewal processes.

        Server ``k`` alternates exponential up-times (mean ``mtbf_min``)
        and down-times (mean ``mttr_min``), drawn from its own
        ``SeedSequence(entropy, spawn_key=spawn_prefix + (k,))`` stream —
        adding or removing servers never perturbs another server's
        failure history (the same spawn-key discipline as the workload
        traces).
        """
        check_int_in_range("num_servers", num_servers, 1)
        check_positive("horizon_min", horizon_min)
        check_positive("mtbf_min", mtbf_min)
        check_positive("mttr_min", mttr_min)

        events: list[FailureEvent] = []
        for server in range(num_servers):
            seq = np.random.SeedSequence(
                entropy=entropy, spawn_key=spawn_prefix + (server,)
            )
            rng = np.random.default_rng(seq)
            t = float(rng.exponential(mtbf_min))
            while t < horizon_min:
                down = float(rng.exponential(mttr_min))
                events.append(FailureEvent(t, server, down))
                t = t + down + float(rng.exponential(mtbf_min))
        return cls(events)

    @classmethod
    def none(cls) -> "FailureSchedule":
        """No failures (the paper's base setting)."""
        return cls([])

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def validate_servers(self, num_servers: int) -> None:
        """Check all events reference servers within the cluster."""
        for event in self._events:
            if event.server >= num_servers:
                raise ValueError(
                    f"failure targets server {event.server} but the cluster "
                    f"has {num_servers} servers"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FailureSchedule(events={len(self._events)})"


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailoverPolicy:
    """Retry-with-backoff dispatch for requests hit by failures.

    A request rejected while at least one replica holder of its video is
    dead (or its replica lost and not yet re-copied) is retried across
    the surviving holders, least-utilized first, after a capped
    exponential backoff: attempt ``i`` (0-based) waits
    ``min(backoff_base_min * backoff_factor**i, backoff_cap_min)``
    simulated minutes.  After ``max_retries`` failed attempts — or when
    the next attempt would land past the measurement horizon — the
    request counts as rejected (a timeout *is* a rejection in the
    metrics).  With ``retry_saturated=True`` plain bandwidth rejections
    retry too, not only failure-touched ones.
    """

    max_retries: int = 3
    backoff_base_min: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap_min: float = 8.0
    retry_saturated: bool = False

    def __post_init__(self) -> None:
        check_int_in_range("max_retries", self.max_retries, 1)
        check_positive("backoff_base_min", self.backoff_base_min)
        if not self.backoff_factor >= 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not self.backoff_cap_min >= self.backoff_base_min:
            raise ValueError("backoff_cap_min must be >= backoff_base_min")

    def delay_min(self, attempt: int) -> float:
        """Backoff before (0-based) retry *attempt*, in minutes."""
        return min(
            self.backoff_base_min * self.backoff_factor**attempt,
            self.backoff_cap_min,
        )


@dataclass(frozen=True)
class RereplicationPolicy:
    """Repair-driven re-replication under a migration-bandwidth cap.

    When a server crashes its replicas are lost; once it recovers, the
    lost copies are re-fetched one at a time (ascending video id) over a
    ``migration_mbps`` link, so video ``v`` becomes servable again
    ``duration_min(v) * rate_mbps(v) / migration_mbps`` minutes after the
    copies queued ahead of it finish.  Until then the recovered server
    cannot serve ``v`` and the dispatcher routes around the hole.
    """

    migration_mbps: float = 1000.0

    def __post_init__(self) -> None:
        check_positive("migration_mbps", self.migration_mbps)


# ----------------------------------------------------------------------
_SPEC_KINDS = ("none", "single", "random", "correlated", "mtbf")


@dataclass(frozen=True)
class FailureSpec:
    """Declarative failure model for the pipeline facade and CLI.

    Parsed from compact strings like ``single:t=30,server=0,down=15``,
    ``random:mtbf=200,mttr=20``, ``correlated:groups=2,mtbf=300,mttr=20``
    or ``mtbf:mtbf=200,mttr=20``; :meth:`build` instantiates a concrete
    :class:`FailureSchedule` for one run, deriving randomness from
    ``SeedSequence(seed, spawn_key=(0xFA11, run_index, ...))`` so every
    run of a multi-run experiment sees an independent but reproducible
    failure history.
    """

    kind: str = "none"
    time_min: float = 30.0
    server: int = 0
    down_min: float = float("inf")
    mtbf_min: float = 0.0
    mttr_min: float | None = None
    groups: int = 2

    def __post_init__(self) -> None:
        if self.kind not in _SPEC_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; "
                f"choose from {_SPEC_KINDS}"
            )
        if self.kind in ("random", "correlated", "mtbf"):
            check_positive("mtbf_min", self.mtbf_min)
        if self.kind == "mtbf" and self.mttr_min is None:
            raise ValueError("mtbf failure model requires mttr_min")
        if self.kind == "correlated":
            check_int_in_range("groups", self.groups, 1)

    @classmethod
    def parse(cls, text: str) -> "FailureSpec":
        """Parse ``kind[:key=value,...]`` (keys: t, server, down, mtbf,
        mttr, groups)."""
        text = text.strip()
        kind, _, rest = text.partition(":")
        kind = kind.strip().lower()
        fields: dict = {"kind": kind}
        alias = {
            "t": "time_min",
            "time": "time_min",
            "server": "server",
            "down": "down_min",
            "mtbf": "mtbf_min",
            "mttr": "mttr_min",
            "groups": "groups",
        }
        if rest:
            for item in rest.split(","):
                key, eq, value = item.partition("=")
                key = key.strip().lower()
                if not eq or key not in alias:
                    raise ValueError(
                        f"bad failure-spec item {item!r} in {text!r}"
                    )
                name = alias[key]
                if name in ("server", "groups"):
                    fields[name] = int(value)
                elif value.strip().lower() in ("inf", "infinity"):
                    fields[name] = float("inf")
                else:
                    fields[name] = float(value)
        return cls(**fields)

    def build(
        self,
        num_servers: int,
        horizon_min: float,
        *,
        seed: int,
        run_index: int = 0,
        shard: int = 0,
    ) -> FailureSchedule:
        """Instantiate the schedule for one run (deterministic in
        ``(spec, seed, run_index, shard)``).

        ``shard`` extends the chaos spawn key for sharded runs: shard 0
        keeps the unsharded key ``(0xFA11, run_index)``, shard ``k >= 1``
        draws from ``(0xFA11, run_index, k)`` — independent per pod,
        independent of the shard count, and still disjoint from every
        workload stream.  Deterministic kinds (``single``) repeat
        identically in every shard: each pod is a full copy of the base
        system, outage included.
        """
        if self.kind == "none":
            return FailureSchedule.none()
        if self.kind == "single":
            return FailureSchedule.single(
                self.time_min, self.server, self.down_min
            )
        chaos_key = (
            (_FAILURE_SPAWN_TAG, int(run_index))
            if shard == 0
            else (_FAILURE_SPAWN_TAG, int(run_index), int(shard))
        )
        if self.kind == "mtbf":
            return FailureSchedule.mtbf_process(
                num_servers,
                horizon_min,
                mtbf_min=self.mtbf_min,
                mttr_min=self.mttr_min,
                entropy=int(seed),
                spawn_prefix=chaos_key,
            )
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=int(seed), spawn_key=chaos_key)
        )
        if self.kind == "random":
            return FailureSchedule.random(
                num_servers,
                horizon_min,
                rng,
                mtbf_min=self.mtbf_min,
                mttr_min=self.mttr_min,
            )
        # correlated: split the cluster into `groups` contiguous racks.
        num_groups = min(self.groups, num_servers)
        bounds = np.array_split(np.arange(num_servers), num_groups)
        return FailureSchedule.correlated(
            [g.tolist() for g in bounds if g.size],
            horizon_min,
            rng,
            mtbf_min=self.mtbf_min,
            mttr_min=self.mttr_min,
        )

    def describe(self) -> str:
        """Compact human-readable form (inverse-ish of :meth:`parse`)."""
        if self.kind == "none":
            return "none"
        if self.kind == "single":
            down = "inf" if self.down_min == float("inf") else f"{self.down_min:g}"
            return f"single:t={self.time_min:g},server={self.server},down={down}"
        parts = [f"mtbf={self.mtbf_min:g}"]
        if self.mttr_min is not None:
            parts.append(f"mttr={self.mttr_min:g}")
        if self.kind == "correlated":
            parts.append(f"groups={self.groups}")
        return f"{self.kind}:" + ",".join(parts)

"""Wide-striping (shared-storage) cluster model — the paper's contrast.

The paper's introduction contrasts two VoD cluster architectures: shared
storage with *wide data striping* (every video striped over all disks:
perfect load balance, but "high scheduling and extension overhead" and a
failure affects everything) versus the distributed-storage *replication*
design the paper optimizes.  This module provides the striping side of that
comparison so the argument can be measured rather than asserted.

Model (documented synthetic stand-in for a RAID/Tiger-style striped
server, per DESIGN.md's substitution rules):

* Every video is striped across all ``N`` servers, so a stream at rate
  ``b`` draws ``b / N`` from every server simultaneously — the cluster
  behaves as a single pooled link of ``N * B``.
* Striping coordination costs bandwidth: each stream's effective drain is
  inflated by ``1 + overhead_per_server * (N - 1)`` (per-block scheduling,
  synchronization and buffer coupling grow with the stripe width).  With
  ``overhead_per_server = 0`` striping is a perfect pooled link — the
  upper bound replication can only approach.
* Storage is a single shared pool holding exactly one copy of each video.
* A *single* server/disk failure interrupts every stream (all content is
  striped over the failed member) until recovery; replication clusters
  degrade only by one server's worth.

The simulator mirrors :class:`VoDClusterSimulator`'s interface (trace in,
:class:`SimulationResult` out) so the two architectures drop into the same
experiment harness.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_non_negative, check_positive
from ..model.cluster import ClusterSpec
from ..model.video import VideoCollection
from ..workload.requests import RequestTrace
from .events import EventKind, EventQueue
from .failures import FailureSchedule
from .metrics import SimulationResult

__all__ = ["StripedClusterSimulator"]


class StripedClusterSimulator:
    """Simulates a wide-striping shared-storage VoD cluster.

    Parameters
    ----------
    cluster:
        Server capacities; striping requires a homogeneous cluster.
    videos:
        The video set (durations and bit rates; one striped copy of each).
    overhead_per_server:
        Fractional per-stream bandwidth inflation per additional stripe
        member (e.g. ``0.01`` = 1% coordination cost per extra server).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        videos: VideoCollection,
        *,
        overhead_per_server: float = 0.01,
    ) -> None:
        check_non_negative("overhead_per_server", overhead_per_server)
        spec = cluster.require_homogeneous()
        total_storage = cluster.total_storage_gb
        needed = float(videos.storage_gb.sum())
        if needed > total_storage + 1e-9:
            raise ValueError(
                f"videos need {needed:.1f} GB but the shared pool has "
                f"{total_storage:.1f} GB"
            )
        self._cluster = cluster
        self._videos = videos
        self._num_servers = cluster.num_servers
        self._overhead = float(overhead_per_server)
        self._inflation = 1.0 + self._overhead * (self._num_servers - 1)
        self._pool_mbps = spec.bandwidth_mbps * self._num_servers
        self._rates = videos.bit_rates_mbps
        self._durations = videos.durations_min

    # ------------------------------------------------------------------
    @property
    def effective_capacity_mbps(self) -> float:
        """Pooled bandwidth divided by the striping inflation factor."""
        return self._pool_mbps / self._inflation

    def effective_stream_capacity(self, bit_rate_mbps: float) -> int:
        """Concurrent streams the striped cluster sustains at one rate."""
        check_positive("bit_rate_mbps", bit_rate_mbps)
        return int(self.effective_capacity_mbps / bit_rate_mbps + 1e-9)

    # ------------------------------------------------------------------
    def run(
        self,
        trace: RequestTrace,
        *,
        horizon_min: float | None = None,
        failures: FailureSchedule | None = None,
    ) -> SimulationResult:
        """Simulate one trace on the striped cluster.

        Any failure event interrupts *all* active streams (every video is
        striped over the failed member) and blocks admissions until the
        member recovers.
        """
        if horizon_min is None:
            horizon_min = trace.duration_min if trace.num_requests else 1.0
        check_positive("horizon_min", horizon_min)

        num_videos = self._videos.num_videos
        per_video_requests = np.zeros(num_videos, dtype=np.int64)
        per_video_rejected = np.zeros(num_videos, dtype=np.int64)

        times = trace.arrival_min
        videos = trace.videos
        if times.size and int(videos.max()) >= num_videos:
            raise ValueError("trace references a video outside the collection")
        if trace.watch_min is not None:
            hold_min = np.minimum(trace.watch_min, self._durations[videos])
        else:
            hold_min = self._durations[videos]

        events = EventQueue()
        members_down = 0
        epoch = 0
        used_mbps = 0.0  # inflated pooled usage
        active_streams = 0
        streams_dropped = 0
        served = 0
        peak_mbps = 0.0
        last_time = 0.0
        load_integral = 0.0

        num_failures = 0
        num_recoveries = 0
        outage_since = 0.0
        outage_total = 0.0

        if failures is not None:
            failures.validate_servers(self._num_servers)
            for failure in failures:
                # Strict <: a failure at exactly the end of the peak is a
                # no-op (same horizon-edge rule as VoDClusterSimulator).
                if failure.time_min < horizon_min:
                    events.push(failure.time_min, EventKind.FAILURE, failure)

        def advance(time: float) -> None:
            nonlocal last_time, load_integral
            load_integral += used_mbps * max(time - last_time, 0.0)
            last_time = time

        def handle(event) -> None:
            nonlocal members_down, epoch, used_mbps, active_streams, streams_dropped
            nonlocal num_failures, num_recoveries, outage_since, outage_total
            if event.kind is EventKind.DEPARTURE:
                drain, stream_epoch = event.payload
                if stream_epoch != epoch:
                    return  # stream was interrupted by an outage
                advance(event.time)
                used_mbps -= drain
                active_streams -= 1
            elif event.kind is EventKind.FAILURE:
                failure = event.payload
                advance(event.time)
                # Any member down interrupts everything.
                streams_dropped += active_streams
                active_streams = 0
                used_mbps = 0.0
                epoch += 1
                if members_down == 0:
                    outage_since = event.time
                members_down += 1
                num_failures += 1
                if np.isfinite(failure.recovery_min):
                    events.push(failure.recovery_min, EventKind.RECOVERY, None)
            elif event.kind is EventKind.RECOVERY:
                advance(event.time)
                members_down -= 1
                num_recoveries += 1
                if members_down == 0:
                    outage_total += event.time - outage_since

        def drain_until(until: float) -> None:
            while events and events.peek().time <= until:
                handle(events.pop())

        for index, (t, video) in enumerate(zip(times, videos)):
            t = float(t)
            if t > horizon_min:
                break
            video = int(video)
            drain_until(t)
            per_video_requests[video] += 1
            drain = float(self._rates[video]) * self._inflation
            if members_down > 0 or used_mbps + drain > self._pool_mbps + 1e-6:
                per_video_rejected[video] += 1
                continue
            advance(t)
            used_mbps += drain
            active_streams += 1
            served += 1
            peak_mbps = max(peak_mbps, used_mbps)
            events.push(
                t + float(hold_min[index]), EventKind.DEPARTURE, (drain, epoch)
            )

        drain_until(horizon_min)
        advance(horizon_min)
        if members_down > 0:
            outage_total += horizon_min - outage_since

        # Striping spreads load perfectly: report equal per-server shares
        # of the *useful* (un-inflated) traffic.
        avg_useful = load_integral / horizon_min / self._inflation
        per_server_avg = np.full(self._num_servers, avg_useful / self._num_servers)
        per_server_peak = np.full(
            self._num_servers, peak_mbps / self._inflation / self._num_servers
        )
        return SimulationResult(
            num_requests=int(per_video_requests.sum()),
            num_rejected=int(per_video_rejected.sum()),
            per_video_requests=per_video_requests,
            per_video_rejected=per_video_rejected,
            server_time_avg_load_mbps=per_server_avg,
            server_peak_load_mbps=per_server_peak,
            server_served=self._spread_served(served),
            server_bandwidth_mbps=self._cluster.bandwidth_mbps,
            horizon_min=float(horizon_min),
            streams_dropped=streams_dropped,
            num_failures=num_failures,
            num_recoveries=num_recoveries,
            # Wide striping couples every server to every outage: the
            # whole cluster is down whenever any member is.
            server_downtime_min=np.full(self._num_servers, outage_total),
        )

    def _spread_served(self, served: int) -> np.ndarray:
        """Attribute served streams evenly across stripe members."""
        base, extra = divmod(served, self._num_servers)
        counts = np.full(self._num_servers, base, dtype=np.int64)
        counts[:extra] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StripedClusterSimulator(N={self._num_servers}, "
            f"overhead={self._overhead}, "
            f"effective={self.effective_capacity_mbps:.0f} Mb/s)"
        )

"""Multicast batching — the Sec. 2 bandwidth-reduction technique.

The paper's related work points at batching/multicasting (Aggarwal et al.'s
batching schemes, Eager et al.'s bandwidth-minimization survey) as the
complementary lever to replication: instead of one unicast stream per
viewer, requests for the same video arriving within a short *batching
window* share a single multicast stream, trading startup latency for
bandwidth.

Model: the first request for video ``v`` opens a batch and schedules it to
fire ``window_min`` later; requests for ``v`` arriving before the fire join
it for free.  At fire time one stream is dispatched for the whole batch
(same dispatch/admission rules as unicast); if no server can carry it, the
entire batch is rejected.  ``window_min = 0`` degenerates to the paper's
unicast model (batches of size one fire instantly).

Metrics extend :class:`SimulationResult` with the number of multicast
streams started, the mean startup wait and the *batching factor*
(viewers served per stream) — the capacity multiplier batching buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_positive
from ..model.cluster import ClusterSpec
from ..model.layout import ReplicaLayout
from ..model.video import VideoCollection
from ..workload.requests import RequestTrace
from .dispatch import Dispatcher, StaticRoundRobinDispatcher
from .events import EventKind, EventQueue
from .metrics import SimulationResult
from .server import StreamingServer

__all__ = ["BatchingResult", "BatchingClusterSimulator"]


@dataclass(frozen=True)
class BatchingResult:
    """A :class:`SimulationResult` plus batching-specific metrics."""

    base: SimulationResult
    streams_started: int
    viewers_served: int
    mean_wait_min: float

    @property
    def batching_factor(self) -> float:
        """Viewers per multicast stream (1.0 = no sharing)."""
        if self.streams_started == 0:
            return 0.0
        return self.viewers_served / self.streams_started

    @property
    def rejection_rate(self) -> float:
        return self.base.rejection_rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchingResult(rejection={self.rejection_rate:.3f}, "
            f"factor={self.batching_factor:.2f}, "
            f"wait={self.mean_wait_min:.2f}min)"
        )


class BatchingClusterSimulator:
    """Cluster simulator with batched multicast delivery.

    Mirrors :class:`VoDClusterSimulator`'s construction; failures and
    watch-time columns are not supported here (multicast viewers share one
    stream for the full duration).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        videos: VideoCollection,
        layout: ReplicaLayout,
        *,
        window_min: float = 2.0,
        dispatcher_factory=StaticRoundRobinDispatcher,
        validate_layout: bool = True,
    ) -> None:
        if layout.num_videos != videos.num_videos:
            raise ValueError("layout and videos disagree on M")
        if layout.num_servers != cluster.num_servers:
            raise ValueError("layout and cluster disagree on N")
        check_non_negative("window_min", window_min)
        if validate_layout:
            layout.validate(cluster, videos, allow_mixed_rates=True)
        self._cluster = cluster
        self._videos = videos
        self._layout = layout
        self._window = float(window_min)
        self._dispatcher_factory = dispatcher_factory
        self._rate_matrix = layout.rate_matrix
        self._best_rates = layout.video_bit_rates
        self._durations = videos.durations_min

    # ------------------------------------------------------------------
    def run(
        self,
        trace: RequestTrace,
        *,
        horizon_min: float | None = None,
    ) -> BatchingResult:
        """Simulate one trace with batching and return extended metrics."""
        if horizon_min is None:
            horizon_min = trace.duration_min if trace.num_requests else 1.0
        check_positive("horizon_min", horizon_min)

        servers = [
            StreamingServer(k, spec.bandwidth_mbps)
            for k, spec in enumerate(self._cluster)
        ]
        dispatcher: Dispatcher = self._dispatcher_factory(self._layout)
        events = EventQueue()

        num_videos = self._videos.num_videos
        per_video_requests = np.zeros(num_videos, dtype=np.int64)
        per_video_rejected = np.zeros(num_videos, dtype=np.int64)
        open_batches: dict[int, list[float]] = {}
        streams_started = 0
        viewers_served = 0
        total_wait = 0.0

        times = trace.arrival_min
        videos = trace.videos
        if times.size and int(videos.max()) >= num_videos:
            raise ValueError("trace references a video outside the collection")

        def fire_batch(time: float, video: int) -> None:
            nonlocal streams_started, viewers_served, total_wait
            batch = open_batches.pop(video)
            admitted = False
            for server_id in dispatcher.candidates(video, servers):
                rate = float(self._rate_matrix[video, server_id])
                if rate > 0.0 and servers[server_id].can_admit(rate):
                    servers[server_id].admit(time, rate)
                    events.push(
                        time + float(self._durations[video]),
                        EventKind.DEPARTURE,
                        (server_id, rate),
                    )
                    admitted = True
                    break
            if admitted:
                streams_started += 1
                viewers_served += len(batch)
                total_wait += sum(time - arrival for arrival in batch)
            else:
                per_video_rejected[video] += len(batch)

        def handle(event) -> None:
            if event.kind is EventKind.DEPARTURE:
                server_id, rate = event.payload
                servers[server_id].release(event.time, rate)
            elif event.kind is EventKind.BATCH_FIRE:
                fire_batch(event.time, event.payload)

        def drain(until: float, *, hold_batches_at_until: bool = False) -> None:
            """Handle queued events up to *until*.

            ``hold_batches_at_until`` keeps batch firings scheduled exactly
            at *until* in the queue, so a request arriving at that instant
            still joins its batch (the EventKind.BATCH_FIRE-after-ARRIVAL
            ordering, applied across the arrival iterator).
            """
            while events:
                head = events.peek()
                if head.time > until:
                    break
                if (
                    hold_batches_at_until
                    and head.time == until
                    and head.kind is EventKind.BATCH_FIRE
                ):
                    break
                handle(events.pop())

        for t, video in zip(times, videos):
            t = float(t)
            if t > horizon_min:
                break
            video = int(video)
            drain(t, hold_batches_at_until=True)
            per_video_requests[video] += 1
            if self._best_rates[video] <= 0.0:
                per_video_rejected[video] += 1
                continue
            if video in open_batches:
                open_batches[video].append(t)
            else:
                open_batches[video] = [t]
                events.push(t + self._window, EventKind.BATCH_FIRE, video)

        # Close the measurement window, then fire batches still open: their
        # viewers arrived inside the horizon and deserve an admission
        # verdict (taken at the horizon; the remaining wait is curtailed).
        drain(horizon_min)
        while events:
            event = events.pop()
            if event.kind is EventKind.BATCH_FIRE:
                fire_batch(horizon_min, event.payload)
            # departures past the horizon are outside the measurement
        for server in servers:
            server.advance(horizon_min)

        base = SimulationResult(
            num_requests=int(per_video_requests.sum()),
            num_rejected=int(per_video_rejected.sum()),
            per_video_requests=per_video_requests,
            per_video_rejected=per_video_rejected,
            server_time_avg_load_mbps=np.array(
                [s.time_avg_load_mbps(horizon_min) for s in servers]
            ),
            server_peak_load_mbps=np.array([s.peak_load_mbps for s in servers]),
            server_served=np.array([s.served_requests for s in servers]),
            server_bandwidth_mbps=self._cluster.bandwidth_mbps,
            horizon_min=float(horizon_min),
        )
        mean_wait = total_wait / viewers_served if viewers_served else 0.0
        return BatchingResult(
            base=base,
            streams_started=streams_started,
            viewers_served=viewers_served,
            mean_wait_min=mean_wait,
        )

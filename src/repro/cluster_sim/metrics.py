"""Simulation result container and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..model.objective import ImbalanceMetric, load_imbalance

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated peak period.

    Attributes
    ----------
    num_requests / num_rejected:
        Request and rejection totals; the paper's headline metric is the
        rejection rate.
    per_video_requests / per_video_rejected:
        Per-video breakdowns (length ``M``).
    server_time_avg_load_mbps:
        Time-averaged outgoing load of each server over the horizon — the
        ``l_k`` used for the Figure 6 load-imbalance curves.
    server_peak_load_mbps / server_served:
        Peak instantaneous load and number of admitted streams per server.
    num_redirected:
        Streams served through the backbone-redirection extension (0 when
        the extension is disabled).
    horizon_min:
        Measurement horizon (the peak-period length).
    num_truncated:
        Arrivals strictly after the horizon that were therefore not
        simulated; ``num_requests + num_truncated`` recovers the trace's
        request count.
    num_events:
        Events the simulator processed (arrivals, departures, failures,
        recoveries) — the throughput numerator of the run report.
    wall_time_sec:
        Wall-clock time of the simulation run.  Excluded from
        :meth:`same_outcome`: it varies run to run while every semantic
        field is deterministic.
    """

    num_requests: int
    num_rejected: int
    per_video_requests: np.ndarray = field(repr=False)
    per_video_rejected: np.ndarray = field(repr=False)
    server_time_avg_load_mbps: np.ndarray = field(repr=False)
    server_peak_load_mbps: np.ndarray = field(repr=False)
    server_served: np.ndarray = field(repr=False)
    server_bandwidth_mbps: np.ndarray = field(repr=False)
    horizon_min: float = 90.0
    num_redirected: int = 0
    #: Streams killed mid-play by server failures (failure extension).
    streams_dropped: int = 0
    num_truncated: int = 0
    num_events: int = 0
    #: Availability accounting (chaos extension; all zero without
    #: failures, so failure-free results compare equal across versions).
    num_failures: int = 0
    num_recoveries: int = 0
    #: Failover retries scheduled (each backoff wait counts once).
    num_retries: int = 0
    #: Requests saved by a successful failover retry.
    num_failovers: int = 0
    #: Rejections attributable to a failure (some replica holder was down
    #: or its replica lost when the request finally gave up); a subset of
    #: ``num_rejected``.
    num_lost_to_failure: int = 0
    #: Replicas restored by repair-driven re-replication.
    num_rereplicated: int = 0
    #: Mean crash-to-repair time over completed recoveries (minutes).
    mean_time_to_recovery_min: float = 0.0
    #: Per-server minutes spent down within the horizon (zeros array when
    #: no failures occurred — never None, so equality stays structural).
    server_downtime_min: np.ndarray | None = field(default=None, repr=False)
    wall_time_sec: float = 0.0

    def __post_init__(self) -> None:
        if self.server_downtime_min is None:
            object.__setattr__(
                self,
                "server_downtime_min",
                np.zeros(self.server_time_avg_load_mbps.size),
            )
        if self.num_requests < 0 or self.num_rejected < 0:
            raise ValueError("request counts must be >= 0")
        if self.num_truncated < 0 or self.num_events < 0:
            raise ValueError("event counts must be >= 0")
        if min(
            self.num_failures,
            self.num_recoveries,
            self.num_retries,
            self.num_failovers,
            self.num_lost_to_failure,
            self.num_rereplicated,
        ) < 0:
            raise ValueError("availability counters must be >= 0")
        if self.num_recoveries > self.num_failures:
            raise ValueError("cannot recover more often than failing")
        if self.num_lost_to_failure > self.num_rejected:
            raise ValueError(
                "requests lost to failure exceed total rejections"
            )
        if self.num_rejected > self.num_requests:
            raise ValueError("cannot reject more requests than arrived")
        if int(self.per_video_requests.sum()) != self.num_requests:
            raise ValueError("per-video requests do not sum to the total")
        if int(self.per_video_rejected.sum()) != self.num_rejected:
            raise ValueError("per-video rejections do not sum to the total")
        if np.any(self.per_video_rejected > self.per_video_requests):
            raise ValueError("a video rejected more requests than it received")

    # ------------------------------------------------------------------
    @property
    def rejection_rate(self) -> float:
        """Fraction of requests rejected (0 when no requests arrived)."""
        if self.num_requests == 0:
            return 0.0
        return self.num_rejected / self.num_requests

    @property
    def num_servers(self) -> int:
        return int(self.server_time_avg_load_mbps.size)

    @property
    def num_served(self) -> int:
        return self.num_requests - self.num_rejected

    def load_imbalance(
        self,
        metric: ImbalanceMetric = ImbalanceMetric.MAX_DEVIATION,
        *,
        relative: bool = True,
    ) -> float:
        """Imbalance degree ``L`` of the time-averaged loads.

        ``relative=True`` (default) divides by the mean load; for the
        paper's Figure 6 scale use :meth:`load_imbalance_percent`.
        """
        return load_imbalance(
            self.server_time_avg_load_mbps, metric, relative=relative
        )

    def load_imbalance_percent(
        self, metric: ImbalanceMetric = ImbalanceMetric.MAX_DEVIATION
    ) -> float:
        """The paper's Figure 6 quantity: ``L`` as a % of server bandwidth.

        Absolute imbalance of the time-averaged loads divided by the mean
        server bandwidth.  This normalization reproduces the figure's shape
        (rising with arrival rate, peaking at 30-35 req/min, declining as
        the cluster saturates); normalizing by the mean *load* instead
        inflates the light-load end.
        """
        return (
            load_imbalance(self.server_time_avg_load_mbps, metric)
            / float(self.server_bandwidth_mbps.mean())
            * 100.0
        )

    def same_outcome(self, other: "SimulationResult") -> bool:
        """True when every deterministic field matches bit-for-bit.

        Wall-clock time is the only field allowed to differ: it depends on
        the machine, not the simulated system.  This is the equality the
        parallel-vs-serial determinism guarantee is stated in.
        """
        scalars = (
            "num_requests",
            "num_rejected",
            "horizon_min",
            "num_redirected",
            "streams_dropped",
            "num_truncated",
            "num_events",
            "num_failures",
            "num_recoveries",
            "num_retries",
            "num_failovers",
            "num_lost_to_failure",
            "num_rereplicated",
            "mean_time_to_recovery_min",
        )
        arrays = (
            "per_video_requests",
            "per_video_rejected",
            "server_time_avg_load_mbps",
            "server_peak_load_mbps",
            "server_served",
            "server_bandwidth_mbps",
            "server_downtime_min",
        )
        return all(
            getattr(self, name) == getattr(other, name) for name in scalars
        ) and all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in arrays
        )

    def per_video_rejection_rate(self) -> np.ndarray:
        """Rejection rate per video (0 where a video got no requests)."""
        requests = np.maximum(self.per_video_requests, 1)
        return np.where(
            self.per_video_requests > 0,
            self.per_video_rejected / requests,
            0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult(requests={self.num_requests}, "
            f"rejected={self.num_rejected} ({self.rejection_rate:.1%}), "
            f"L={self.load_imbalance():.3f})"
        )

"""Discrete-event VoD cluster simulator (systems S11, S15, S17-S18, S20, S24).

Implements the evaluation testbed of Sec. 5: bandwidth-constrained streaming
servers, a dispatcher that routes each request to a replica of the requested
video (static round robin by default, matching the paper's model), a simple
admission control that rejects a request when the dispatched server lacks
outgoing bandwidth, and time-weighted load/rejection metrics.

Extensions layered on the same event machinery:

* request redirection over an internal backbone (the companion strategy
  [19], :mod:`.redirection`);
* chaos & recovery: correlated/MTBF failure injection, failover dispatch
  with retry/backoff, and repair-driven re-replication (:mod:`.failures`);
* deterministic K-way scale-out: struct-of-arrays request columns shared
  by all three simulation loops (:mod:`.soa`) and shard/merge machinery
  whose merged results are bit-identical to an unsharded block run
  (:mod:`.sharding`);
* a vectorized event-batch engine over the SoA columns (:mod:`.vector`)
  behind the lockstep engine registry (:mod:`.engines`);
* the wide-striping shared-storage architecture the paper argues against
  (:mod:`.striping`);
* multicast batching delivery (:mod:`.batching`);
* wait-queue admission with bounded patience (:mod:`.queueing`).
"""

from .batching import BatchingClusterSimulator, BatchingResult
from .engines import ENGINES, engine_run_kwargs, make_simulator, validate_engine
from .dispatch import (
    Dispatcher,
    FirstFitDispatcher,
    LeastLoadedDispatcher,
    StaticRoundRobinDispatcher,
    make_dispatcher_factory,
)
from .events import EventKind, EventQueue
from .dispatch import failover_order
from .failures import (
    FailoverPolicy,
    FailureEvent,
    FailureSchedule,
    FailureSpec,
    RereplicationPolicy,
)
from .metrics import SimulationResult
from .queueing import QueueingClusterSimulator, QueueingResult
from .redirection import BackboneLink
from .reference import ReferenceClusterSimulator
from .server import StreamingServer
from .sharding import (
    fold_unsharded,
    merge_results,
    run_sharded,
    shard_failure_schedules,
    shard_spawn_key,
    shard_traces,
    unsharded_equivalent,
)
from .simulator import VoDClusterSimulator
from .soa import RequestSoA
from .striping import StripedClusterSimulator
from .vector import VectorClusterSimulator

__all__ = [
    "BatchingClusterSimulator",
    "BatchingResult",
    "ENGINES",
    "engine_run_kwargs",
    "make_simulator",
    "validate_engine",
    "Dispatcher",
    "FirstFitDispatcher",
    "LeastLoadedDispatcher",
    "StaticRoundRobinDispatcher",
    "make_dispatcher_factory",
    "EventKind",
    "EventQueue",
    "failover_order",
    "FailoverPolicy",
    "FailureEvent",
    "FailureSchedule",
    "FailureSpec",
    "RereplicationPolicy",
    "RequestSoA",
    "SimulationResult",
    "BackboneLink",
    "QueueingClusterSimulator",
    "QueueingResult",
    "ReferenceClusterSimulator",
    "StreamingServer",
    "StripedClusterSimulator",
    "VectorClusterSimulator",
    "VoDClusterSimulator",
    "fold_unsharded",
    "merge_results",
    "run_sharded",
    "shard_failure_schedules",
    "shard_spawn_key",
    "shard_traces",
    "unsharded_equivalent",
]

"""Event queue for the discrete-event simulator.

A thin, fully-tested priority queue over ``heapq`` with deterministic
ordering: events sort by time, then by kind priority (departures before
arrivals at the same instant, so a slot freed at time ``t`` can serve an
arrival at time ``t``), then by insertion order.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event kinds; the integer value is the same-time tiebreak priority.

    At one instant: departures release bandwidth first (so a slot freed at
    ``t`` can serve an arrival at ``t``), then failures take servers down
    (a stream ending exactly at the crash ends gracefully), recoveries
    bring servers back, and arrivals are admitted last.
    """

    DEPARTURE = 0
    FAILURE = 1
    RECOVERY = 2
    ARRIVAL = 3
    #: Batched-multicast start; after ARRIVAL so a request arriving at the
    #: same instant still joins the batch.
    BATCH_FIRE = 4
    #: Wait-queue patience expiry; after DEPARTURE so a slot freed at the
    #: deadline still saves the request.
    DEFECTION = 5


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled event (payload excluded from ordering)."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> None:
        """Schedule an event; time must be finite and >= 0."""
        if not (time >= 0.0) or time != time or time == float("inf"):
            raise ValueError(f"event time must be finite and >= 0, got {time!r}")
        heapq.heappush(self._heap, Event(time, kind, next(self._counter), payload))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0]

    def pop_until(self, time: float) -> list[Event]:
        """Pop all events with ``event.time <= time``, in order."""
        events: list[Event] = []
        while self._heap and self._heap[0].time <= time:
            events.append(heapq.heappop(self._heap))
        return events

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

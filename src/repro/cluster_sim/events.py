"""Event queue for the discrete-event simulator.

A thin, fully-tested priority queue over ``heapq`` with deterministic
ordering: events sort by time, then by kind priority (departures before
arrivals at the same instant, so a slot freed at time ``t`` can serve an
arrival at time ``t``), then by insertion order.

Heap entries are *plain tuples*: :class:`Event` is a ``NamedTuple``, so
``heapq`` compares ``(time, kind, seq, payload)`` tuples through CPython's
fast C tuple comparison instead of dataclass ``__lt__`` dispatch.  The
``seq`` tiebreak is unique per queue, so comparison never reaches the
payload.  Hot paths (the cluster simulator's request loop) may bypass the
method API entirely and push bare ``(time, kind, seq, payload)`` tuples
onto :attr:`EventQueue.heap`; bare tuples and :class:`Event` entries
interoperate because ``Event`` *is* a tuple.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, NamedTuple

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event kinds; the integer value is the same-time tiebreak priority.

    At one instant: departures release bandwidth first (so a slot freed at
    ``t`` can serve an arrival at ``t``), then recoveries bring servers
    back, then failures take servers down (a stream ending exactly at the
    crash ends gracefully, and a repair completing exactly at a new crash
    of the same server yields an instantaneous up-flicker rather than a
    contradiction), and arrivals are admitted last.
    """

    DEPARTURE = 0
    #: RECOVERY sorts before FAILURE so a crash scheduled at the exact
    #: repair instant of the same server hits an *up* (and empty) server.
    RECOVERY = 1
    FAILURE = 2
    ARRIVAL = 3
    #: Batched-multicast start; after ARRIVAL so a request arriving at the
    #: same instant still joins the batch.
    BATCH_FIRE = 4
    #: Wait-queue patience expiry; after DEPARTURE so a slot freed at the
    #: deadline still saves the request.
    DEFECTION = 5
    #: Failover retry of a rejected request (chaos extension); after every
    #: state-changing kind so the retry sees the instant's settled state.
    RETRY = 6
    #: Re-replication copy completion (repair-driven replica restore).
    REPLICATE = 7


class Event(NamedTuple):
    """A scheduled event — a plain tuple with named fields.

    The unique ``seq`` makes ordering total before the payload is ever
    compared, preserving the old dataclass semantics (payload excluded
    from ordering) for every entry produced through :meth:`EventQueue.push`.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = None


class EventQueue:
    """Deterministic min-heap of :class:`Event` tuples."""

    __slots__ = ("heap", "_counter")

    def __init__(self) -> None:
        #: The raw tuple heap.  Hot loops may operate on it directly with
        #: ``heapq`` plus :meth:`next_seq`, as long as entries keep the
        #: ``(time, kind, seq, payload)`` shape with valid times.
        self.heap: list[Event] = []
        self._counter = itertools.count()

    def next_seq(self) -> int:
        """Next insertion-order tiebreak (for direct-heap producers)."""
        return next(self._counter)

    def push(self, time: float, kind: EventKind, payload: Any = None) -> None:
        """Schedule an event; time must be finite and >= 0."""
        if not (time >= 0.0) or time != time or time == float("inf"):
            raise ValueError(f"event time must be finite and >= 0, got {time!r}")
        heapq.heappush(self.heap, Event(time, kind, next(self._counter), payload))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self.heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self.heap)

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self.heap:
            raise IndexError("peek on empty EventQueue")
        return self.heap[0]

    def pop_until(self, time: float) -> list[Event]:
        """Pop all events with ``event.time <= time``, in order."""
        events: list[Event] = []
        heap = self.heap
        while heap and heap[0][0] <= time:
            events.append(heapq.heappop(heap))
        return events

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)

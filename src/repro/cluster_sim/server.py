"""Streaming-server state for the simulator.

A :class:`StreamingServer` tracks its outgoing-bandwidth occupancy and
accumulates a time-weighted load integral, from which the per-server
time-averaged load (the ``l_k`` of Eq. 2/3 as measured in Sec. 5.3) is
derived.  Bandwidth accounting uses a small epsilon so that e.g. 450 streams
of 4 Mb/s exactly fill 1800 Mb/s without float-noise rejections.
"""

from __future__ import annotations

from .._validation import check_positive

__all__ = ["StreamingServer"]

#: Admission slack (Mb/s) absorbing float accumulation error.
_EPS_MBPS = 1e-6


class StreamingServer:
    """Outgoing-bandwidth state of one back-end server during a run."""

    __slots__ = (
        "server_id",
        "bandwidth_mbps",
        "used_mbps",
        "active_streams",
        "served_requests",
        "peak_load_mbps",
        "is_up",
        "epoch",
        "dropped_streams",
        "max_streams",
        "_last_time_min",
        "_load_integral",
    )

    def __init__(
        self,
        server_id: int,
        bandwidth_mbps: float,
        *,
        max_streams: int | None = None,
    ) -> None:
        check_positive("bandwidth_mbps", bandwidth_mbps)
        if max_streams is not None and max_streams < 0:
            raise ValueError(f"max_streams must be >= 0, got {max_streams}")
        #: Optional concurrency cap from the disk subsystem (S23); the
        #: outgoing link remains the default, paper-faithful constraint.
        self.max_streams = max_streams
        self.server_id = int(server_id)
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.used_mbps = 0.0
        self.active_streams = 0
        self.served_requests = 0
        self.peak_load_mbps = 0.0
        self.is_up = True
        #: Incremented on every failure; departure events from a previous
        #: epoch are stale (their streams were dropped by the crash).
        self.epoch = 0
        self.dropped_streams = 0
        self._last_time_min = 0.0
        self._load_integral = 0.0  # Mb/s * minutes

    # ------------------------------------------------------------------
    def can_admit(self, rate_mbps: float) -> bool:
        """Whether a new stream fits the outgoing link and stream cap."""
        if not self.is_up:
            return False
        if self.max_streams is not None and self.active_streams >= self.max_streams:
            return False
        return self.used_mbps + rate_mbps <= self.bandwidth_mbps + _EPS_MBPS

    def admit(self, time_min: float, rate_mbps: float) -> None:
        """Start a stream at ``time_min`` (caller checked :meth:`can_admit`)."""
        if not rate_mbps > 0:
            raise ValueError(f"rate_mbps must be > 0, got {rate_mbps}")
        if not self.is_up:
            raise RuntimeError(f"server {self.server_id} is down")
        if not self.can_admit(rate_mbps):
            raise RuntimeError(
                f"server {self.server_id} over-admitted: "
                f"{self.used_mbps + rate_mbps:.3f} > {self.bandwidth_mbps} Mb/s"
            )
        self.advance(time_min)
        used = self.used_mbps + rate_mbps
        self.used_mbps = used
        self.active_streams += 1
        self.served_requests += 1
        if used > self.peak_load_mbps:
            self.peak_load_mbps = used

    def release(self, time_min: float, rate_mbps: float) -> None:
        """End a stream at ``time_min``."""
        if self.active_streams <= 0:
            raise RuntimeError(f"server {self.server_id} released with no streams")
        self.advance(time_min)
        used = self.used_mbps - rate_mbps
        if used < 0.0:
            if used < -_EPS_MBPS:
                raise RuntimeError(
                    f"server {self.server_id} bandwidth accounting went negative"
                )
            used = 0.0
        self.used_mbps = used
        self.active_streams -= 1

    def advance(self, time_min: float) -> None:
        """Accumulate the load integral up to ``time_min`` (monotone)."""
        last = self._last_time_min
        if time_min <= last:
            if time_min < last - 1e-12:
                raise ValueError(
                    f"time moved backwards: {time_min} < {last}"
                )
            return
        self._load_integral += self.used_mbps * (time_min - last)
        self._last_time_min = time_min

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self, time_min: float) -> int:
        """Crash at ``time_min``: all active streams drop instantly.

        Returns the number of dropped streams; bumps the epoch so pending
        departure events for those streams become stale.
        """
        if not self.is_up:
            raise RuntimeError(f"server {self.server_id} is already down")
        self.advance(time_min)
        dropped = self.active_streams
        self.dropped_streams += dropped
        self.used_mbps = 0.0
        self.active_streams = 0
        self.is_up = False
        self.epoch += 1
        return dropped

    def recover(self, time_min: float) -> None:
        """Return to service at ``time_min`` with no streams."""
        if self.is_up:
            raise RuntimeError(f"server {self.server_id} is already up")
        self.advance(time_min)
        self.is_up = True

    # ------------------------------------------------------------------
    def time_avg_load_mbps(self, horizon_min: float) -> float:
        """Time-averaged outgoing load over ``[0, horizon_min]``.

        The caller must have advanced the server to the horizon first.
        """
        check_positive("horizon_min", horizon_min)
        return self._load_integral / horizon_min

    @property
    def utilization(self) -> float:
        """Instantaneous fraction of outgoing bandwidth in use."""
        return self.used_mbps / self.bandwidth_mbps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingServer(id={self.server_id}, used={self.used_mbps:.0f}/"
            f"{self.bandwidth_mbps:.0f} Mb/s, streams={self.active_streams})"
        )

"""Lockstep engine registry: one name per simulation loop.

All engines consume the same constructor arguments and produce
``same_outcome``-identical :class:`~repro.cluster_sim.metrics.SimulationResult`
fields; they differ only in *how* the event loop executes:

``optimized``
    The tuple-heap production loop (:class:`VoDClusterSimulator`) — the
    default everywhere.
``vector``
    Numpy event-batch execution over the SoA columns
    (:class:`~repro.cluster_sim.vector.VectorClusterSimulator`); fastest
    on the paper's base model, delegates to ``optimized`` elsewhere.
``reference``
    The readable method-per-event loop (:class:`ReferenceClusterSimulator`)
    retained as the differential-testing oracle.
``audited``
    The optimized loop with the standard in-situ invariant auditors
    armed; raises on the first violation.

The registry is the single source of truth for ``engine=`` knobs in
:class:`repro.pipeline.PipelineConfig`, the serving plane, the fuzzer
and the CLI.
"""

from __future__ import annotations

from typing import Any

from .reference import ReferenceClusterSimulator
from .simulator import VoDClusterSimulator
from .vector import VectorClusterSimulator

__all__ = ["ENGINES", "engine_run_kwargs", "make_simulator", "validate_engine"]

#: Engine name -> simulator class.  ``audited`` reuses the optimized
#: class; its auditors are armed per ``run()`` call via
#: :func:`engine_run_kwargs`.
ENGINES: dict[str, type[VoDClusterSimulator]] = {
    "optimized": VoDClusterSimulator,
    "vector": VectorClusterSimulator,
    "reference": ReferenceClusterSimulator,
    "audited": VoDClusterSimulator,
}


def validate_engine(name: str) -> str:
    """Return ``name`` if it is a registered engine, else raise."""
    if name not in ENGINES:
        known = ", ".join(sorted(ENGINES))
        raise ValueError(f"unknown engine {name!r}; expected one of: {known}")
    return name


def make_simulator(engine: str, *args: Any, **kwargs: Any):
    """Construct the simulator class registered under ``engine``."""
    return ENGINES[validate_engine(engine)](*args, **kwargs)


def engine_run_kwargs(engine: str) -> dict[str, Any]:
    """Extra ``run()`` kwargs the engine needs (auditor arming)."""
    validate_engine(engine)
    if engine == "audited":
        from ..verify import standard_auditors

        return {"auditors": standard_auditors()}
    return {}

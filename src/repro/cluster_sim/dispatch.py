"""Request-dispatch policies.

The paper's model assumes a *static round-robin* scheduling policy among the
replicas of a video (Sec. 3.2): the dispatcher cycles through the replica
holders per video regardless of their current load, and the admission
control rejects the request if the selected server lacks bandwidth.  That
policy is what makes the per-replica communication weight ``w_i = p_i /
r_i`` the right placement currency, and it is the default in the
reproduction.

Two dynamic policies are provided for the ablation study (E7): least-loaded
(among holders) and first-fit.  Dynamic policies return multiple candidates;
the simulator admits on the first with free bandwidth.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence

import numpy as np

from ..model.layout import ReplicaLayout
from .server import StreamingServer

__all__ = [
    "Dispatcher",
    "StaticRoundRobinDispatcher",
    "LeastLoadedDispatcher",
    "FirstFitDispatcher",
    "make_dispatcher_factory",
]


def _replica_servers(layout: ReplicaLayout) -> list[np.ndarray]:
    """Per-video arrays of replica-holding servers (ascending ids)."""
    return [layout.servers_of(video) for video in range(layout.num_videos)]


class Dispatcher(abc.ABC):
    """Maps a request for a video to an ordered list of candidate servers.

    A dispatcher instance holds per-run state (e.g. round-robin counters)
    and must not be shared across simulation runs; use
    :func:`make_dispatcher_factory` to create one per run.
    """

    #: Short machine-friendly name used in experiment tables.
    name: str = "dispatcher"

    def __init__(self, layout: ReplicaLayout) -> None:
        self._servers_of = _replica_servers(layout)

    def holders(self, video: int) -> np.ndarray:
        """Servers holding a replica of *video*."""
        return self._servers_of[video]

    @abc.abstractmethod
    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        """Ordered candidate servers for a request (may be empty)."""


class StaticRoundRobinDispatcher(Dispatcher):
    """The paper's policy: cycle replicas per video, single candidate.

    The counter advances on every request (admitted or not) — the policy is
    static, so a rejection does not re-route to another replica.
    """

    name = "static_rr"

    def __init__(self, layout: ReplicaLayout) -> None:
        super().__init__(layout)
        self._counters = np.zeros(layout.num_videos, dtype=np.int64)

    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        del servers  # static: ignores load
        holders = self._servers_of[video]
        if holders.size == 0:
            return ()
        index = self._counters[video] % holders.size
        self._counters[video] += 1
        return (int(holders[index]),)


class LeastLoadedDispatcher(Dispatcher):
    """Dynamic policy: try holders from least to most utilized."""

    name = "least_loaded"

    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        holders = self._servers_of[video]
        if holders.size == 0:
            return ()
        utilization = np.array([servers[s].utilization for s in holders])
        order = np.argsort(utilization, kind="stable")
        return [int(holders[i]) for i in order]


class FirstFitDispatcher(Dispatcher):
    """Dynamic policy: try holders in fixed (server-id) order."""

    name = "first_fit"

    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        del servers
        return [int(s) for s in self._servers_of[video]]


def make_dispatcher_factory(
    kind: str,
) -> Callable[[ReplicaLayout], Dispatcher]:
    """Factory by name: ``static_rr`` (default), ``least_loaded``, ``first_fit``."""
    table = {
        StaticRoundRobinDispatcher.name: StaticRoundRobinDispatcher,
        LeastLoadedDispatcher.name: LeastLoadedDispatcher,
        FirstFitDispatcher.name: FirstFitDispatcher,
    }
    try:
        cls = table[kind]
    except KeyError:
        raise ValueError(
            f"unknown dispatcher {kind!r}; choose from {sorted(table)}"
        ) from None
    return cls

"""Request-dispatch policies.

The paper's model assumes a *static round-robin* scheduling policy among the
replicas of a video (Sec. 3.2): the dispatcher cycles through the replica
holders per video regardless of their current load, and the admission
control rejects the request if the selected server lacks bandwidth.  That
policy is what makes the per-replica communication weight ``w_i = p_i /
r_i`` the right placement currency, and it is the default in the
reproduction.

Two dynamic policies are provided for the ablation study (E7): least-loaded
(among holders) and first-fit.  Dynamic policies return multiple candidates;
the simulator admits on the first with free bandwidth.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence

from ..model.layout import ReplicaLayout
from .server import StreamingServer

__all__ = [
    "Dispatcher",
    "StaticRoundRobinDispatcher",
    "LeastLoadedDispatcher",
    "FirstFitDispatcher",
    "make_dispatcher_factory",
    "failover_order",
]


def failover_order(
    holders: Sequence[int], servers: Sequence[StreamingServer]
) -> list[int]:
    """Retry order for failover dispatch: least utilized holder first.

    A stable sort, so equal-utilization holders keep ascending-id order —
    the same tie rule as :class:`LeastLoadedDispatcher`.  All three
    simulator loops (optimized, reference, audited) route failover
    retries through this single helper, which is what keeps their retry
    candidate ordering bit-identical by construction.
    """
    return sorted(holders, key=lambda s: servers[s].utilization)


def _replica_servers(layout: ReplicaLayout) -> list[tuple[int, ...]]:
    """Per-video tuples of replica-holding server ids (ascending).

    Plain ``int`` tuples, not numpy arrays: the simulator's request loop
    iterates candidates per request, and numpy scalar boxing there costs
    more than the whole admission check.
    """
    return [
        tuple(int(s) for s in layout.servers_of(video))
        for video in range(layout.num_videos)
    ]


class Dispatcher(abc.ABC):
    """Maps a request for a video to an ordered list of candidate servers.

    A dispatcher instance holds per-run state (e.g. round-robin counters)
    and must not be shared across simulation runs; use
    :func:`make_dispatcher_factory` to create one per run.
    """

    #: Short machine-friendly name used in experiment tables.
    name: str = "dispatcher"

    def __init__(self, layout: ReplicaLayout) -> None:
        self._servers_of = _replica_servers(layout)

    def holders(self, video: int) -> tuple[int, ...]:
        """Servers holding a replica of *video* (ascending ids)."""
        return self._servers_of[video]

    @abc.abstractmethod
    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        """Ordered candidate servers for a request (may be empty)."""


class StaticRoundRobinDispatcher(Dispatcher):
    """The paper's policy: cycle replicas per video, single candidate.

    The counter advances on every request (admitted or not) — the policy is
    static, so a rejection does not re-route to another replica.
    """

    name = "static_rr"

    def __init__(self, layout: ReplicaLayout) -> None:
        super().__init__(layout)
        self._counters = [0] * layout.num_videos

    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        del servers  # static: ignores load
        holders = self._servers_of[video]
        if not holders:
            return ()
        counters = self._counters
        index = counters[video]
        counters[video] = index + 1
        return (holders[index % len(holders)],)


class LeastLoadedDispatcher(Dispatcher):
    """Dynamic policy: try holders from least to most utilized."""

    name = "least_loaded"

    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        holders = self._servers_of[video]
        if not holders:
            return ()
        # Stable sort == np.argsort(kind="stable"): equal-utilization
        # holders keep ascending-id order.
        return sorted(holders, key=lambda s: servers[s].utilization)


class FirstFitDispatcher(Dispatcher):
    """Dynamic policy: try holders in fixed (server-id) order."""

    name = "first_fit"

    def candidates(
        self, video: int, servers: Sequence[StreamingServer]
    ) -> Sequence[int]:
        del servers
        return list(self._servers_of[video])


def make_dispatcher_factory(
    kind: str,
) -> Callable[[ReplicaLayout], Dispatcher]:
    """Factory by name: ``static_rr`` (default), ``least_loaded``, ``first_fit``."""
    table = {
        StaticRoundRobinDispatcher.name: StaticRoundRobinDispatcher,
        LeastLoadedDispatcher.name: LeastLoadedDispatcher,
        FirstFitDispatcher.name: FirstFitDispatcher,
    }
    try:
        cls = table[kind]
    except KeyError:
        raise ValueError(
            f"unknown dispatcher {kind!r}; choose from {sorted(table)}"
        ) from None
    return cls

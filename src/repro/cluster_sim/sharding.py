"""Deterministic K-way sharding of a simulation, with an exact merge.

Scale-out model (weak scaling / federation): a run with ``K`` shards
simulates ``K`` independent *pods*, each a full copy of the base system —
same cluster, same catalog, same layout and dispatcher — each fed its own
independent Poisson arrival stream at the configured rate.  Pods share no
servers and no dispatch state, so the shards are embarrassingly parallel
(fanned across processes via
:meth:`repro.runtime.parallel.ParallelRunner.map_simulations`) and the
merge of their :class:`~repro.cluster_sim.metrics.SimulationResult`
objects is *exact*, not approximate: a K-shard run is bit-identical to one
genuine unsharded simulation of the K-pod block system (see
:func:`unsharded_equivalent` and the ``scale`` block of
``BENCH_hotpaths.json``).

With ``backbone_mbps = B > 0`` the contract is the *per-pod backbone
split*: each shard owns an independent B-Mb/s backbone link and
redirects requests only within its own pod's servers (the block system
encodes this via ``redirection_pods``, one link per shard).  Shard
results then merge exactly — ``num_redirected`` sums — because no
redirected stream ever crosses a pod boundary.  Modeling one *shared*
B-Mb/s link across all pods is a different system (its admission
decisions couple the shards) and is intentionally not what a sharded
run means.

Spawn-key discipline (extends ``runtime/``'s):

* workload: shard 0 of run ``r`` draws from ``SeedSequence(seed,
  spawn_key=(r,))`` — exactly the plain run's stream, so ``K=1`` is
  bitwise the unsharded run — and shard ``k >= 1`` from ``(r, k)``;
* chaos: shard 0 keeps ``(0xFA11, r)`` and shard ``k >= 1`` uses
  ``(0xFA11, r, k)``, staying inside the ``0xFA11`` failure namespace and
  disjoint from every workload stream (workload keys always start with a
  run index, far below ``0xFA11`` in practice).

Because shard ``k``'s streams never depend on ``K``, per-shard traces and
results are a *prefix-stable* family: the first 2 shards of a 4-shard run
are the 2 shards of a 2-shard run, which is what makes the merge
associative across regroupings.

Merge contract (the fixed-order reduction of the ISSUE's bugfix):

* integer counters sum; ``per_video_*`` histograms (shared catalog) sum
  elementwise;
* per-server arrays (loads, peaks, served, bandwidth, downtime) —
  including every floating-point utilization integral — concatenate in
  **shard-index order**, never re-reduced, so no float addition is
  reordered by scheduling;
* ``mean_time_to_recovery_min`` is re-derived from a left fold of
  ``mean * count`` over the leaf results in shard-index order;
* ``wall_time_sec`` is the max over shards (the parallel critical path);
  it is excluded from ``same_outcome`` as always.

The merge therefore depends only on the shard *indices*, never on arrival
order of the results — reproducible across ``--jobs`` values and input
permutations (``tests/test_sharding.py`` pins this).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import replace as dataclass_replace

import numpy as np

from .._validation import check_int_in_range
from ..model.cluster import ClusterSpec
from ..model.layout import ReplicaLayout
from ..model.video import Video, VideoCollection
from ..workload.requests import RequestTrace
from .failures import FailureEvent, FailureSchedule, FailureSpec
from .metrics import SimulationResult

__all__ = [
    "shard_spawn_key",
    "shard_traces",
    "shard_failure_schedules",
    "merge_results",
    "run_sharded",
    "unsharded_equivalent",
    "fold_unsharded",
]


def shard_spawn_key(run_index: int, shard_index: int) -> tuple[int, ...]:
    """SeedSequence spawn key of one shard's workload stream.

    Shard 0 keeps the plain run's key ``(run_index,)`` — a ``K=1``
    sharded run is bitwise the unsharded run — and shard ``k >= 1`` gets
    ``(run_index, k)``.  Keys are independent of ``K`` (prefix-stable).
    """
    check_int_in_range("run_index", run_index, 0)
    check_int_in_range("shard_index", shard_index, 0)
    if shard_index == 0:
        return (int(run_index),)
    return (int(run_index), int(shard_index))


def shard_traces(
    generator,
    duration_min: float,
    *,
    seed: int,
    num_shards: int,
    run_index: int = 0,
) -> list[RequestTrace]:
    """Generate the ``num_shards`` arrival sub-streams of one run.

    ``generator`` is a :class:`~repro.workload.generator.WorkloadGenerator`;
    each shard draws a full-rate trace from its own spawned stream (see
    :func:`shard_spawn_key`), so shard ``k``'s trace is reproducible
    independently of ``num_shards``.
    """
    check_int_in_range("num_shards", num_shards, 1)
    traces = []
    for shard in range(int(num_shards)):
        child = np.random.SeedSequence(
            entropy=int(seed), spawn_key=shard_spawn_key(run_index, shard)
        )
        traces.append(
            generator.generate(duration_min, np.random.default_rng(child))
        )
    return traces


def shard_failure_schedules(
    spec: FailureSpec,
    num_servers: int,
    horizon_min: float,
    *,
    seed: int,
    num_shards: int,
    run_index: int = 0,
) -> list[FailureSchedule]:
    """Build each shard's failure schedule from one declarative recipe.

    Shard 0 reproduces the unsharded schedule (chaos spawn key
    ``(0xFA11, run_index)``); shard ``k >= 1`` extends the key with its
    shard index, staying disjoint from every workload stream.
    Deterministic recipes (``single``) repeat identically in every pod.
    """
    check_int_in_range("num_shards", num_shards, 1)
    return [
        spec.build(
            num_servers,
            horizon_min,
            seed=seed,
            run_index=run_index,
            shard=shard,
        )
        for shard in range(int(num_shards))
    ]


# ----------------------------------------------------------------------
def merge_results(
    results: "Sequence[SimulationResult]",
    *,
    shard_indices: "Sequence[int] | None" = None,
) -> SimulationResult:
    """Reduce per-shard results into the cluster-of-pods view.

    ``results`` must be ordered by shard index; pass ``shard_indices``
    to merge results collected in any other order — they are sorted by
    index first, so the reduction order (and every floating-point fold)
    is a function of the shard identities alone, never of scheduling.

    The merged result has ``K * N`` servers (per-server arrays
    concatenated in shard order) over the shared ``M``-video catalog
    (per-video histograms summed elementwise).  A single input is
    returned unchanged, making ``K=1`` merges bitwise no-ops.
    """
    results = list(results)
    if not results:
        raise ValueError("merge_results needs at least one shard result")
    if shard_indices is not None:
        indices = [int(i) for i in shard_indices]
        if len(indices) != len(results):
            raise ValueError(
                f"{len(indices)} shard indices for {len(results)} results"
            )
        if len(set(indices)) != len(indices):
            raise ValueError("shard indices must be distinct")
        order = sorted(range(len(results)), key=indices.__getitem__)
        results = [results[i] for i in order]
    if len(results) == 1:
        return results[0]

    first = results[0]
    horizon = first.horizon_min
    num_videos = int(first.per_video_requests.size)
    for result in results[1:]:
        if result.horizon_min != horizon:
            raise ValueError(
                "shards disagree on the measurement horizon: "
                f"{result.horizon_min} vs {horizon}"
            )
        if int(result.per_video_requests.size) != num_videos:
            raise ValueError("shards disagree on the catalog size")

    # Elementwise integer sums over the shared catalog, accumulated in
    # shard-index order (exact regardless of order; fixed anyway).
    per_video_requests = first.per_video_requests.copy()
    per_video_rejected = first.per_video_rejected.copy()
    for result in results[1:]:
        per_video_requests += result.per_video_requests
        per_video_rejected += result.per_video_rejected

    num_recoveries = sum(r.num_recoveries for r in results)
    # Recovery-weighted left fold in shard-index order: each term is the
    # shard's exact downtime sum (mean * count), so the merged MTTR is
    # reproducible bit-for-bit across --jobs values and permutations.
    ttr_sum = 0.0
    for result in results:
        ttr_sum += result.mean_time_to_recovery_min * result.num_recoveries

    def concat(name: str) -> np.ndarray:
        return np.concatenate([getattr(r, name) for r in results])

    return SimulationResult(
        num_requests=sum(r.num_requests for r in results),
        num_rejected=sum(r.num_rejected for r in results),
        per_video_requests=per_video_requests,
        per_video_rejected=per_video_rejected,
        server_time_avg_load_mbps=concat("server_time_avg_load_mbps"),
        server_peak_load_mbps=concat("server_peak_load_mbps"),
        server_served=concat("server_served"),
        server_bandwidth_mbps=concat("server_bandwidth_mbps"),
        horizon_min=horizon,
        num_redirected=sum(r.num_redirected for r in results),
        streams_dropped=sum(r.streams_dropped for r in results),
        num_truncated=sum(r.num_truncated for r in results),
        num_events=sum(r.num_events for r in results),
        num_failures=sum(r.num_failures for r in results),
        num_recoveries=num_recoveries,
        num_retries=sum(r.num_retries for r in results),
        num_failovers=sum(r.num_failovers for r in results),
        num_lost_to_failure=sum(r.num_lost_to_failure for r in results),
        num_rereplicated=sum(r.num_rereplicated for r in results),
        mean_time_to_recovery_min=(
            ttr_sum / num_recoveries if num_recoveries else 0.0
        ),
        server_downtime_min=concat("server_downtime_min"),
        wall_time_sec=max(r.wall_time_sec for r in results),
    )


# ----------------------------------------------------------------------
def run_sharded(
    simulator,
    traces: "Iterable[RequestTrace]",
    *,
    runner=None,
    failure_schedules: "Sequence[FailureSchedule] | None" = None,
    **run_kwargs,
) -> tuple[SimulationResult, list[SimulationResult]]:
    """Run one simulation split across shards; return (merged, per-shard).

    Each trace (built by :func:`shard_traces`) is one shard; shards fan
    out through ``runner.map_simulations`` (the active runner when none
    is given — install a multi-worker :class:`ParallelRunner` to use all
    cores).  ``failure_schedules``, when given, supplies one schedule per
    shard (see :func:`shard_failure_schedules`); remaining ``run_kwargs``
    (``horizon_min``, policies, …) apply to every shard.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("run_sharded needs at least one shard trace")
    per_trace_kwargs = None
    if failure_schedules is not None:
        schedules = list(failure_schedules)
        if len(schedules) != len(traces):
            raise ValueError(
                f"{len(schedules)} failure schedules for "
                f"{len(traces)} shards"
            )
        per_trace_kwargs = [{"failures": s} for s in schedules]
    if runner is None:
        # Lazy import: cluster_sim must stay importable without runtime
        # (which itself imports cluster_sim).
        from ..runtime.parallel import get_runner

        runner = get_runner()
    shard_results = runner.map_simulations(
        simulator,
        traces,
        per_trace_kwargs=per_trace_kwargs,
        **run_kwargs,
    )
    return merge_results(shard_results), shard_results


# ----------------------------------------------------------------------
def unsharded_equivalent(
    simulator,
    traces: "Sequence[RequestTrace]",
    *,
    failure_schedules: "Sequence[FailureSchedule] | None" = None,
):
    """Build the genuine single-simulation form of a K-shard run.

    Returns ``(block_simulator, merged_trace, block_failures)``: one
    simulator over the K-pod *block system* — ``K * N`` servers, ``K * M``
    videos, the base rate matrix repeated block-diagonally — fed the
    time-sorted union of the shard traces with video ids offset by
    ``shard * M`` (and failure schedules offset by ``shard * N``).
    Running it through any of the three lockstep loops and folding with
    :func:`fold_unsharded` must reproduce :func:`merge_results` exactly;
    :func:`repro.verify.shard_audit.audit_shard_merge` automates the
    comparison.

    Pods decompose exactly because all dispatch state is per-video or
    per-holder (round-robin counters, least-loaded/first-fit candidate
    sets, failover orderings all consider replica holders only) and
    equal-time events in different pods touch disjoint servers.  Backbone
    redirection scans servers and meters a shared link, so it only
    decomposes under the *per-pod backbone* contract: a K-shard run with
    ``backbone_mbps = B`` means each shard owns an independent B-Mb/s
    backbone and redirects within its own servers.  The block system
    realizes exactly that via ``redirection_pods = K * P`` (P the base
    simulator's own pod count): block video ``s*M + v`` lands in pod
    ``s*P + v // (M/P)`` and block server ``s*N + n`` in pod
    ``s*P + n // (N/P)``, so every block pod is one shard-local pod with
    its own link, and the merge is exact with no reconciliation step.
    """
    traces = list(traces)
    num_shards = len(traces)
    if num_shards < 1:
        raise ValueError("unsharded_equivalent needs at least one shard")
    layout = simulator._layout
    num_videos = layout.num_videos
    num_servers = layout.num_servers
    base_rates = layout.rate_matrix
    block = np.zeros((num_shards * num_videos, num_shards * num_servers))
    for shard in range(num_shards):
        block[
            shard * num_videos : (shard + 1) * num_videos,
            shard * num_servers : (shard + 1) * num_servers,
        ] = base_rates
    videos = VideoCollection(
        Video(
            shard * num_videos + video.video_id,
            video.bit_rate_mbps,
            video.duration_min,
        )
        for shard in range(num_shards)
        for video in simulator._videos
    )
    cluster = ClusterSpec(
        spec for _ in range(num_shards) for spec in simulator._cluster
    )
    limits = simulator._stream_limits
    block_sim = type(simulator)(
        cluster,
        videos,
        ReplicaLayout(block),
        dispatcher_factory=simulator._dispatcher_factory,
        backbone_mbps=simulator._backbone_mbps,
        redirection_pods=num_shards * simulator._redirection_pods,
        stream_limits=(list(limits) * num_shards if limits else None),
        # The base layout was validated at simulator construction and the
        # block layout is its K-fold direct sum; skip the O((KM)(KN))
        # re-validation.
        validate_layout=False,
    )

    all_times = np.concatenate([t.arrival_min for t in traces])
    all_videos = np.concatenate(
        [t.videos + shard * num_videos for shard, t in enumerate(traces)]
    )
    watches = [t.watch_min for t in traces]
    if any(w is not None for w in watches):
        if any(w is None for w in watches):
            raise ValueError(
                "shard traces must agree on carrying watch times"
            )
        all_watch = np.concatenate(watches)
    else:
        all_watch = None
    # Stable sort of the shard-ordered concatenation: equal-time arrivals
    # stay in shard-index order (any tie order gives identical per-pod
    # behavior — pods are disjoint — but a fixed one keeps the union
    # trace itself reproducible).
    order = np.argsort(all_times, kind="stable")
    merged_trace = RequestTrace(
        all_times[order],
        all_videos[order],
        all_watch[order] if all_watch is not None else None,
    )

    block_failures = None
    if failure_schedules is not None:
        schedules = list(failure_schedules)
        if len(schedules) != num_shards:
            raise ValueError(
                f"{len(schedules)} failure schedules for "
                f"{num_shards} shards"
            )
        block_failures = FailureSchedule(
            FailureEvent(
                event.time_min,
                event.server + shard * num_servers,
                event.down_min,
            )
            for shard, schedule in enumerate(schedules)
            for event in schedule
        )
    return block_sim, merged_trace, block_failures


def fold_unsharded(
    result: SimulationResult, num_shards: int
) -> SimulationResult:
    """Fold a block-system result onto the shared catalog view.

    The block system indexes ``K * M`` videos; the merged shard view sums
    pod copies of the same title, so the per-video histograms reshape to
    ``(K, M)`` and sum over pods (exact — integer counts).  Every other
    field is already in the merged result's shape.
    """
    check_int_in_range("num_shards", num_shards, 1)
    num_videos, remainder = divmod(
        int(result.per_video_requests.size), int(num_shards)
    )
    if remainder:
        raise ValueError(
            f"catalog size {result.per_video_requests.size} is not a "
            f"multiple of {num_shards} shards"
        )
    shape = (int(num_shards), num_videos)
    return dataclass_replace(
        result,
        per_video_requests=result.per_video_requests.reshape(shape).sum(axis=0),
        per_video_rejected=result.per_video_rejected.reshape(shape).sum(axis=0),
    )

"""Vectorized event-batch DES engine (the ``vector`` lockstep loop).

:class:`VectorClusterSimulator` is the fourth lockstep engine (after the
optimized, reference and audited loops): it produces bit-identical
:class:`~repro.cluster_sim.metrics.SimulationResult` fields on every
workload, but replaces the per-event Python loop with numpy batch
operations over the shared :class:`~repro.cluster_sim.soa.RequestSoA`
columns.

Why the batching is exact
-------------------------
Under the paper's static round-robin policy (no chaos, no backbone) the
simulation *decomposes by server*: the dispatcher's per-video counters
advance once per serveable arrival regardless of server state, so every
request's candidate server is a pure function of its position in the
trace — computable up front, vectorized, for the whole run.  Departures
only ever touch the server that admitted the stream.  The global event
interleaving therefore never couples two servers, and each server's
timeline can be replayed independently as array operations:

1. **Assignment sweep** — per-video occurrence ranks over the arrival
   columns give each request its round-robin holder in one stable sort.
2. **Admission sandwich** — per server, admission decisions are bracketed
   between two monotone occupancy bounds (all-undecided-admitted vs
   all-undecided-rejected, both one ``cumsum`` over the merged
   arrival/departure event order); a request certainly fits under the
   high bound or certainly overflows under the low bound, and the
   earliest undecided request always resolves, so the iteration
   converges — typically in one round on unsaturated servers.
3. **Exact replay** — with decisions fixed, the server's running
   occupancy is one ``np.cumsum`` over the admitted ±rate deltas in
   event order.  ``cumsum`` is a sequential left fold, so every partial
   sum is bit-for-bit the scalar loop's ``used_mbps`` sequence; the load
   integral, peak and admission checks are re-derived from it with the
   same float operations (``x + 0.0`` terms for skipped zero-dt touches
   are IEEE identities, so unconditional adds stay exact).
4. **Verification** — the replay re-checks every decision against the
   exact occupancies and that no departure drives a server negative
   (the scalar loops clamp float residue there).  Any mismatch — e.g. a
   mixed-rate layout whose residues would clamp — falls back to a
   per-server scalar replay that mirrors the optimized loop's arithmetic
   operation for operation, so the engine is exact-or-fallback, never
   approximately vectorized.

Configurations outside the decomposition (dynamic dispatchers couple
servers through load inspection, chaos mutates replica state, the
backbone scans every server, observers sample mid-run) delegate to the
optimized loop, keeping lockstep equivalence trivial there by
construction.  ``tests/test_vector_engine.py`` enforces equivalence over
randomized crossings and the full pinned fuzz corpus.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush

import numpy as np

from .._validation import check_positive
from .dispatch import StaticRoundRobinDispatcher, _replica_servers
from .metrics import SimulationResult
from .simulator import VoDClusterSimulator
from .soa import RequestSoA

__all__ = ["VectorClusterSimulator"]

_EPS_MBPS = 1e-6

#: Admission-sandwich round budget per server; servers that resolve
#: slower (sustained saturation) take the exact scalar fallback instead.
_MAX_ROUNDS = 24


def _occurrence_ranks(values: np.ndarray) -> np.ndarray:
    """Rank of each element among equal values, in array order.

    ``[7, 3, 7, 7, 3] -> [0, 0, 1, 2, 1]`` — the per-video round-robin
    counter value each arrival observes.
    """
    n = values.size
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_vals[1:], sorted_vals[:-1], out=is_start[1:])
    idx = np.arange(n)
    group_start = np.maximum.accumulate(np.where(is_start, idx, 0))
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = idx - group_start
    return ranks


class _ServerOutcome:
    """Per-server replay result (admissions plus closed-out metrics)."""

    __slots__ = ("admitted", "served", "peak", "integral", "deps_processed")

    def __init__(self, admitted, served, peak, integral, deps_processed):
        self.admitted = admitted
        self.served = served
        self.peak = peak
        self.integral = integral
        self.deps_processed = deps_processed


class VectorClusterSimulator(VoDClusterSimulator):
    """Batch-vectorized simulator; same constructor, same results."""

    def run(
        self,
        trace,
        *,
        horizon_min=None,
        failures=None,
        failover_on_down=False,
        failover=None,
        rereplication=None,
        auditors=None,
        observer=None,
    ) -> SimulationResult:
        """Simulate one trace; batched when the config decomposes.

        The batched path engages for the paper's base model — static
        round robin, no failure schedule, no backbone — which is the
        throughput-critical configuration.  Everything else (dynamic
        dispatchers, chaos, redirection, observation, auditing) runs the
        optimized event loop, so results are lockstep-identical across
        the whole configuration space either way.
        """
        if (
            auditors
            or observer is not None
            or (failures is not None and len(failures) > 0)
            or self._backbone_mbps > 0
            or self._dispatcher_factory is not StaticRoundRobinDispatcher
        ):
            return super().run(
                trace,
                horizon_min=horizon_min,
                failures=failures,
                failover_on_down=failover_on_down,
                failover=failover,
                rereplication=rereplication,
                auditors=auditors,
                observer=observer,
            )
        return self._run_batched(trace, horizon_min)

    # ------------------------------------------------------------------
    def _static_rr_tables(self):
        """Flattened per-video holder lists (cached; layout is immutable)."""
        tables = getattr(self, "_rr_tables", None)
        if tables is None:
            holders = _replica_servers(self._layout)
            counts = np.array([len(h) for h in holders], dtype=np.int64)
            offsets = np.zeros(len(holders) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            flat = np.array(
                [s for hs in holders for s in hs], dtype=np.int64
            )
            tables = (flat, offsets[:-1], counts)
            self._rr_tables = tables
        return tables

    # ------------------------------------------------------------------
    def _run_batched(self, trace, horizon_min) -> SimulationResult:
        start_wall = time.perf_counter()
        if horizon_min is None:
            horizon_min = trace.duration_min if trace.num_requests else 1.0
        check_positive("horizon_min", horizon_min)
        horizon_min = float(horizon_min)

        num_servers = self._cluster.num_servers
        num_videos = self._videos.num_videos
        bandwidth = self._cluster.bandwidth_mbps
        limits = self._stream_limits

        soa = RequestSoA.from_trace(trace, self._durations, horizon_min)
        n = soa.num_simulated
        times = soa.times[:n].astype(np.float64, copy=False)
        videos = soa.videos[:n]
        holds = soa.holds[:n].astype(np.float64, copy=False)

        per_video_requests = np.bincount(
            videos, minlength=num_videos
        ).astype(np.int64, copy=False)

        flat, offsets, hcounts = self._static_rr_tables()
        # A request for a replica-less video is rejected before dispatch
        # (no counter tick); everything else consumes one round-robin
        # tick and lands on exactly one candidate server.
        serveable = (self._best_rates[videos] > 0.0) & (hcounts[videos] > 0)
        vs = videos[serveable]
        ts = times[serveable]
        ends = ts + holds[serveable]
        if vs.size:
            occ = _occurrence_ranks(vs)
            sid = flat[offsets[vs] + occ % hcounts[vs]]
            rates = self._rate_matrix[vs, sid]
        else:
            sid = np.zeros(0, dtype=np.int64)
            rates = np.zeros(0)

        admitted_sub = np.zeros(vs.size, dtype=bool)
        server_peak = np.zeros(num_servers)
        server_integral = np.zeros(num_servers)
        server_served = np.zeros(num_servers, dtype=np.int64)
        deps_processed = 0

        if vs.size:
            order_s = np.argsort(sid, kind="stable")
            counts = np.bincount(sid, minlength=num_servers)
            bounds = np.zeros(num_servers + 1, dtype=np.intp)
            np.cumsum(counts, out=bounds[1:])
            for k in range(num_servers):
                a, b = int(bounds[k]), int(bounds[k + 1])
                if a == b:
                    continue
                sel = order_s[a:b]
                cap = float(bandwidth[k])
                maxs = limits[k] if limits is not None else None
                outcome = self._solve_server(
                    ts[sel], rates[sel], ends[sel], cap, maxs, horizon_min
                )
                if outcome is None:
                    outcome = self._scalar_server(
                        ts[sel], rates[sel], ends[sel], cap, maxs,
                        horizon_min,
                    )
                admitted_sub[sel] = outcome.admitted
                server_served[k] = outcome.served
                server_peak[k] = outcome.peak
                server_integral[k] = outcome.integral
                deps_processed += outcome.deps_processed

        rejected = np.ones(n, dtype=bool)
        serveable_idx = np.flatnonzero(serveable)
        rejected[serveable_idx[admitted_sub]] = False
        per_video_rejected = np.bincount(
            videos[rejected], minlength=num_videos
        ).astype(np.int64, copy=False)

        return SimulationResult(
            num_requests=int(n),
            num_rejected=int(rejected.sum()),
            per_video_requests=per_video_requests,
            per_video_rejected=per_video_rejected,
            server_time_avg_load_mbps=server_integral / horizon_min,
            server_peak_load_mbps=server_peak,
            server_served=server_served,
            server_bandwidth_mbps=bandwidth,
            horizon_min=horizon_min,
            num_redirected=0,
            streams_dropped=0,
            num_truncated=soa.num_truncated,
            num_events=int(n) + int(deps_processed),
            wall_time_sec=time.perf_counter() - start_wall,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _merged_events(at, ar, ae, horizon):
        """One server's tentative event order, matching the heap's rules.

        Departures at time ``d`` are processed before an arrival at ``t``
        whenever ``d <= t`` — except a zero-hold stream's own departure,
        which is pushed only when its arrival is admitted and so pops
        just after it.  Equal-time departures pop in admission (seq)
        order.  Departures past the horizon are never popped and carry
        their bandwidth to the edge; they are left out entirely.
        """
        na = at.size
        dep = np.flatnonzero(ae <= horizon)
        ev_time = np.concatenate((at, ae[dep]))
        ev_aidx = np.concatenate((np.arange(na, dtype=np.intp), dep))
        ev_is_arr = np.zeros(ev_time.size, dtype=bool)
        ev_is_arr[:na] = True
        # phase 0: departures popped before same-time arrivals; phase 1:
        # arrivals interleaved with their own zero-hold departures.
        phase = np.ones(ev_time.size, dtype=np.int8)
        phase[na:] = (ae[dep] == at[dep]).astype(np.int8)
        sub = np.zeros(ev_time.size, dtype=np.int8)
        sub[na:] = 1
        order = np.lexsort((sub, ev_aidx, phase, ev_time))
        return (
            ev_time[order],
            ev_aidx[order],
            ev_is_arr[order],
            ar[ev_aidx[order]],
        )

    # ------------------------------------------------------------------
    def _solve_server(self, at, ar, ae, cap, maxs, horizon):
        """Vectorized replay of one server; ``None`` -> scalar fallback."""
        time_o, aidx_o, isarr_o, rate_o = self._merged_events(
            at, ar, ae, horizon
        )
        signed = np.where(isarr_o, rate_o, -rate_o)
        arr_pos = np.flatnonzero(isarr_o)
        na = at.size
        eps = _EPS_MBPS
        check_streams = maxs is not None
        if check_streams:
            signed_st = np.where(isarr_o, 1, -1)

        # Admission sandwich: bracket undecided requests between the
        # all-undecided-admitted (high) and all-undecided-rejected (low)
        # occupancy bounds; occupancy is monotone in the admitted set, so
        # passing under high / overflowing under low is definitive.  The
        # earliest undecided request sees coinciding bounds and always
        # resolves, so the loop terminates; the round budget bails to the
        # scalar fallback on slow (saturated) servers instead of looping.
        status = np.zeros(na, dtype=np.int8)  # 0 open, 1 admit, 2 reject
        status[~(ar > 0.0)] = 2
        for _ in range(_MAX_ROUNDS):
            open_mask = status == 0
            if not open_mask.any():
                break
            stat_ev = status[aidx_o]
            inc_high = stat_ev != 2
            inc_low = stat_ev == 1
            run_high = np.cumsum(np.where(inc_high, signed, 0.0))
            run_low = np.cumsum(np.where(inc_low, signed, 0.0))
            before_high = np.concatenate(([0.0], run_high))[arr_pos]
            before_low = np.concatenate(([0.0], run_low))[arr_pos]
            ok_high = before_high + ar <= cap + eps
            bad_low = before_low + ar > cap + eps
            if check_streams:
                st_high = np.cumsum(np.where(inc_high, signed_st, 0))
                st_low = np.cumsum(np.where(inc_low, signed_st, 0))
                ok_high &= np.concatenate(([0], st_high))[arr_pos] < maxs
                bad_low |= np.concatenate(([0], st_low))[arr_pos] >= maxs
            newly_adm = open_mask & ok_high
            newly_rej = open_mask & bad_low & ~ok_high
            if not (newly_adm.any() or newly_rej.any()):
                return None
            status[newly_adm] = 1
            status[newly_rej] = 2
        else:
            return None

        admitted = status == 1
        # Exact replay over the decided set: admitted events carry their
        # deltas, rejected-but-serveable arrivals ride along as zero-delta
        # probes so their rejection can be re-checked against the exact
        # state, and everything else drops out.
        adm_ev = admitted[aidx_o]
        probe_ev = isarr_o & ~adm_ev & (rate_o > 0.0)
        include = adm_ev | probe_ev
        time_f = time_o[include]
        aidx_f = aidx_o[include]
        isarr_f = isarr_o[include]
        touch_f = adm_ev[include]
        delta = np.where(touch_f, signed[include], 0.0)
        run = np.cumsum(delta)
        before = np.concatenate(([0.0], run))[:-1] if run.size else run

        dep_f = ~isarr_f
        if bool((run[dep_f] < 0.0).any()) if run.size else False:
            # The scalar loops clamp float residue at departures; the
            # pure cumsum diverges there, so replay exactly instead.
            return None

        # Re-verify every decision against the exact occupancy sequence;
        # the sandwich used bounds, and float non-associativity can flip
        # an on-the-boundary call.  A single mismatch invalidates the
        # whole server (later state depends on it): scalar fallback.
        f_arr = np.flatnonzero(isarr_f)
        fits = before[f_arr] + ar[aidx_f[f_arr]] <= cap + eps
        if check_streams:
            st_run = np.cumsum(np.where(touch_f, np.where(isarr_f, 1, -1), 0))
            st_before = np.concatenate(([0], st_run))[:-1]
            fits &= st_before[f_arr] < maxs
        if bool((fits != touch_f[f_arr]).any()):
            return None

        # Metrics, with the scalar loops' exact arithmetic: the load
        # integral is the left fold of ``used * dt`` over touch times
        # (zero-dt terms add +0.0, an IEEE identity), closed out by the
        # final advance to the horizon; the peak is the max occupancy
        # right after an admission.
        tt = time_f[touch_f]
        used_end = float(run[-1]) if run.size else 0.0
        last_t = float(tt[-1]) if tt.size else 0.0
        if tt.size:
            prev = np.concatenate(([0.0], tt[:-1]))
            terms = before[touch_f] * (tt - prev)
        else:
            terms = np.zeros(0)
        closing = used_end * (horizon - last_t)
        integral = float(
            np.cumsum(np.concatenate((terms, [closing])))[-1]
        )
        adm_arr = run[isarr_f & touch_f]
        peak = float(adm_arr.max()) if adm_arr.size else 0.0
        if peak < 0.0:
            peak = 0.0
        return _ServerOutcome(
            admitted,
            int(admitted.sum()),
            peak,
            integral,
            int(dep_f.sum()),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _scalar_server(at, ar, ae, cap, maxs, horizon):
        """Exact per-server scalar replay (the optimized loop's ops)."""
        eps = _EPS_MBPS
        na = at.size
        at_l = at.tolist()
        ar_l = ar.tolist()
        ae_l = ae.tolist()
        admitted = np.zeros(na, dtype=bool)
        used = 0.0
        streams = 0
        served = 0
        peak = 0.0
        integral = 0.0
        last = 0.0
        deps = 0
        heap: list = []
        for i in range(na):
            t = at_l[i]
            while heap and heap[0][0] <= t:
                etime, _, rate = heappop(heap)
                deps += 1
                if etime > last:
                    integral += used * (etime - last)
                    last = etime
                used -= rate
                if used < 0.0:
                    if used < -eps:
                        raise RuntimeError(
                            "server bandwidth accounting went negative"
                        )
                    used = 0.0
                streams -= 1
            rate = ar_l[i]
            if rate > 0.0 and used + rate <= cap + eps and (
                maxs is None or streams < maxs
            ):
                if t > last:
                    integral += used * (t - last)
                    last = t
                used += rate
                streams += 1
                served += 1
                if used > peak:
                    peak = used
                admitted[i] = True
                end = ae_l[i]
                if end <= horizon:
                    heappush(heap, (end, i, rate))
        while heap and heap[0][0] <= horizon:
            etime, _, rate = heappop(heap)
            deps += 1
            if etime > last:
                integral += used * (etime - last)
                last = etime
            used -= rate
            if used < 0.0:
                if used < -eps:
                    raise RuntimeError(
                        "server bandwidth accounting went negative"
                    )
                used = 0.0
            streams -= 1
        if horizon > last:
            integral += used * (horizon - last)
        return _ServerOutcome(admitted, served, peak, integral, deps)

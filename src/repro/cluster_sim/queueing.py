"""Wait-queue admission — requests queue briefly instead of rejecting.

The paper's admission control rejects instantly when the dispatched server
is saturated.  A common softer policy lets the request *wait* for a slot up
to a patience bound: if a stream ends in time, the viewer starts late; if
not, the viewer defects (which is what the rejection rate then counts).
With the paper's 90-minute videos a single departure wave can absorb a
burst, so even one or two minutes of patience shaves the variance-driven
rejections of Sec. 5.3.

Policy details:

* An arrival is admitted immediately if any dispatched candidate has room
  (same policies as the unicast simulator).
* Otherwise it joins a FIFO wait queue and defects after ``patience_min``.
* Every departure triggers a queue scan: the oldest waiting request whose
  video has a replica with room anywhere starts (waiting defeats static
  dispatch on purpose — a waiting viewer takes any replica).

Metrics extend :class:`SimulationResult` with defection counts and the
mean/max start delay of queued-then-served viewers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from .._validation import check_non_negative, check_positive
from ..model.cluster import ClusterSpec
from ..model.layout import ReplicaLayout
from ..model.video import VideoCollection
from ..workload.requests import RequestTrace
from .dispatch import Dispatcher, StaticRoundRobinDispatcher
from .events import EventKind, EventQueue
from .metrics import SimulationResult
from .server import StreamingServer

__all__ = ["QueueingResult", "QueueingClusterSimulator"]


@dataclass(frozen=True)
class QueueingResult:
    """A :class:`SimulationResult` plus wait-queue metrics.

    ``base.num_rejected`` counts defections (patience expiries).
    """

    base: SimulationResult
    num_queued: int
    num_queued_served: int
    mean_wait_min: float
    max_wait_min: float

    @property
    def rejection_rate(self) -> float:
        return self.base.rejection_rate

    @property
    def num_defected(self) -> int:
        return self.base.num_rejected

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueueingResult(rejection={self.rejection_rate:.3f}, "
            f"queued={self.num_queued}, wait={self.mean_wait_min:.2f}min)"
        )


class QueueingClusterSimulator:
    """Cluster simulator with a bounded-patience wait queue."""

    def __init__(
        self,
        cluster: ClusterSpec,
        videos: VideoCollection,
        layout: ReplicaLayout,
        *,
        patience_min: float = 2.0,
        dispatcher_factory=StaticRoundRobinDispatcher,
        validate_layout: bool = True,
    ) -> None:
        if layout.num_videos != videos.num_videos:
            raise ValueError("layout and videos disagree on M")
        if layout.num_servers != cluster.num_servers:
            raise ValueError("layout and cluster disagree on N")
        check_non_negative("patience_min", patience_min)
        if validate_layout:
            layout.validate(cluster, videos, allow_mixed_rates=True)
        self._cluster = cluster
        self._videos = videos
        self._layout = layout
        self._patience = float(patience_min)
        self._dispatcher_factory = dispatcher_factory
        self._rate_matrix = layout.rate_matrix
        self._best_rates = layout.video_bit_rates
        self._durations = videos.durations_min

    # ------------------------------------------------------------------
    def run(
        self,
        trace: RequestTrace,
        *,
        horizon_min: float | None = None,
    ) -> QueueingResult:
        """Simulate one trace with the wait-queue admission policy."""
        if horizon_min is None:
            horizon_min = trace.duration_min if trace.num_requests else 1.0
        check_positive("horizon_min", horizon_min)

        servers = [
            StreamingServer(k, spec.bandwidth_mbps)
            for k, spec in enumerate(self._cluster)
        ]
        dispatcher: Dispatcher = self._dispatcher_factory(self._layout)
        events = EventQueue()
        ticket = itertools.count()

        num_videos = self._videos.num_videos
        per_video_requests = np.zeros(num_videos, dtype=np.int64)
        per_video_rejected = np.zeros(num_videos, dtype=np.int64)
        # FIFO wait queue with lazy deletion: id -> (video, arrival time).
        waiting: dict[int, tuple[int, float]] = {}
        num_queued = 0
        num_queued_served = 0
        waits: list[float] = []

        times = trace.arrival_min
        videos = trace.videos
        if times.size and int(videos.max()) >= num_videos:
            raise ValueError("trace references a video outside the collection")
        if trace.watch_min is not None:
            raise ValueError(
                "the wait-queue simulator models full-duration sessions; "
                "strip the trace's watch times first"
            )

        def start_stream(time: float, video: int, server_id: int) -> None:
            rate = float(self._rate_matrix[video, server_id])
            servers[server_id].admit(time, rate)
            events.push(
                time + float(self._durations[video]),
                EventKind.DEPARTURE,
                (server_id, rate),
            )

        def any_holder_with_room(video: int) -> int | None:
            best, best_util = None, np.inf
            for server_id in dispatcher.holders(video):
                server_id = int(server_id)
                rate = float(self._rate_matrix[video, server_id])
                server = servers[server_id]
                if rate > 0.0 and server.can_admit(rate) and server.utilization < best_util:
                    best, best_util = server_id, server.utilization
            return best

        def serve_from_queue(time: float) -> None:
            nonlocal num_queued_served
            # FIFO by ticket id (dicts preserve insertion order).
            for ticket_id in list(waiting):
                video, arrival = waiting[ticket_id]
                server_id = any_holder_with_room(video)
                if server_id is None:
                    continue
                del waiting[ticket_id]
                start_stream(time, video, server_id)
                num_queued_served += 1
                waits.append(time - arrival)

        def handle(event) -> None:
            if event.kind is EventKind.DEPARTURE:
                server_id, rate = event.payload
                servers[server_id].release(event.time, rate)
                serve_from_queue(event.time)
            elif event.kind is EventKind.DEFECTION:
                ticket_id = event.payload
                entry = waiting.pop(ticket_id, None)
                if entry is not None:
                    per_video_rejected[entry[0]] += 1

        def drain(until: float) -> None:
            while events and events.peek().time <= until:
                handle(events.pop())

        for t, video in zip(times, videos):
            t = float(t)
            if t > horizon_min:
                break
            video = int(video)
            drain(t)
            per_video_requests[video] += 1
            if self._best_rates[video] <= 0.0:
                per_video_rejected[video] += 1
                continue

            admitted = False
            for server_id in dispatcher.candidates(video, servers):
                rate = float(self._rate_matrix[video, server_id])
                if rate > 0.0 and servers[server_id].can_admit(rate):
                    start_stream(t, video, server_id)
                    admitted = True
                    break
            if not admitted:
                if self._patience == 0.0:
                    per_video_rejected[video] += 1
                else:
                    ticket_id = next(ticket)
                    waiting[ticket_id] = (video, t)
                    num_queued += 1
                    events.push(
                        t + self._patience, EventKind.DEFECTION, ticket_id
                    )

        drain(horizon_min)
        # Requests still waiting at the horizon: their outcome is unknown
        # within the measurement; count them as defected (conservative).
        for video, _arrival in waiting.values():
            per_video_rejected[video] += 1
        waiting.clear()
        for server in servers:
            server.advance(horizon_min)

        base = SimulationResult(
            num_requests=int(per_video_requests.sum()),
            num_rejected=int(per_video_rejected.sum()),
            per_video_requests=per_video_requests,
            per_video_rejected=per_video_rejected,
            server_time_avg_load_mbps=np.array(
                [s.time_avg_load_mbps(horizon_min) for s in servers]
            ),
            server_peak_load_mbps=np.array([s.peak_load_mbps for s in servers]),
            server_served=np.array([s.served_requests for s in servers]),
            server_bandwidth_mbps=self._cluster.bandwidth_mbps,
            horizon_min=float(horizon_min),
        )
        return QueueingResult(
            base=base,
            num_queued=num_queued,
            num_queued_served=num_queued_served,
            mean_wait_min=float(np.mean(waits)) if waits else 0.0,
            max_wait_min=float(np.max(waits)) if waits else 0.0,
        )

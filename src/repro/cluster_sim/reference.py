"""Reference (clarity-first) implementation of the cluster simulator.

:class:`ReferenceClusterSimulator` preserves the original straight-line
``run()`` of :class:`~repro.cluster_sim.simulator.VoDClusterSimulator` —
per-request numpy indexing, closure-based event handling, method-call
server accounting — as the executable specification of the simulator's
semantics.  The optimized simulator must produce bit-identical
:class:`SimulationResult` fields (everything except wall time) on every
workload; ``tests/test_simulator_equivalence.py`` enforces that over
randomized configurations crossing failures × redirection × stream limits
× watch-time traces, and ``benchmarks/bench_hotpaths.py`` re-checks it on
every benchmark run.

Keep this module boring: it exists to be obviously correct, not fast.
"""

from __future__ import annotations

import time

import numpy as np

from .._validation import check_positive
from .dispatch import Dispatcher, failover_order
from .events import EventKind, EventQueue
from .failures import FailoverPolicy, FailureSchedule, RereplicationPolicy
from .metrics import SimulationResult
from .redirection import BackboneLink
from .server import StreamingServer
from .simulator import VoDClusterSimulator
from .soa import RequestSoA
from ..workload.requests import RequestTrace

__all__ = ["ReferenceClusterSimulator"]


class ReferenceClusterSimulator(VoDClusterSimulator):
    """The pre-optimization simulator: same constructor, original ``run``."""

    def run(
        self,
        trace: RequestTrace,
        *,
        horizon_min: float | None = None,
        failures: FailureSchedule | None = None,
        failover_on_down: bool = False,
        failover: FailoverPolicy | None = None,
        rereplication: RereplicationPolicy | None = None,
    ) -> SimulationResult:
        """Simulate one trace exactly as the original implementation did."""
        start_wall = time.perf_counter()
        if horizon_min is None:
            horizon_min = trace.duration_min if trace.num_requests else 1.0
        check_positive("horizon_min", horizon_min)
        horizon_min = float(horizon_min)

        servers = [
            StreamingServer(
                k,
                spec.bandwidth_mbps,
                max_streams=(
                    self._stream_limits[k] if self._stream_limits else None
                ),
            )
            for k, spec in enumerate(self._cluster)
        ]
        dispatcher: Dispatcher = self._dispatcher_factory(self._layout)
        # Redirection pods: one independent BackboneLink per pod (P=1 is
        # the paper's single shared backbone; see the optimized loop).
        pods = self._redirection_pods
        if self._backbone_mbps > 0:
            backbones = [
                BackboneLink(self._backbone_mbps) for _ in range(pods)
            ]
            videos_per_pod = self._videos.num_videos // pods
            servers_per_pod = len(servers) // pods
            pod_servers = [
                servers[p * servers_per_pod : (p + 1) * servers_per_pod]
                for p in range(pods)
            ]
        else:
            backbones = None
        events = EventQueue()
        # Backbone bandwidth attributable to redirected streams per server,
        # so a crash can return the right amount in bulk.
        backbone_by_server = np.zeros(len(servers))
        streams_dropped = 0
        events_processed = 0

        # Chaos gating mirrors the optimized loop: no (or an empty)
        # failure schedule turns every new mechanism off.
        chaos = failures is not None and len(failures) > 0
        retry_policy = failover if chaos and failover is not None else None
        rerep = rereplication if chaos and rereplication is not None else None
        num_failures = num_recoveries = 0
        num_retries = num_failovers = 0
        num_lost_to_failure = num_rereplicated = 0
        down_since: dict[int, float] = {}
        downtime = [0.0] * len(servers)
        ttr_sum = 0.0

        rate_matrix = self._rate_matrix
        if rerep is not None:
            # Copy-on-write replica rates (see the optimized loop).
            rate_matrix = self._rate_matrix.copy()
            lost_by_server: list[list[int]] = [[] for _ in servers]

        if failures is not None:
            failures.validate_servers(len(servers))
            for failure in failures:
                # Strict <: a failure at exactly the end of the peak is a
                # no-op rather than a mutation of post-horizon state.
                if failure.time_min < horizon_min:
                    events.push(failure.time_min, EventKind.FAILURE, failure)

        def failure_touched(video: int) -> bool:
            """Whether a failure is implicated in rejecting *video* now."""
            for s in dispatcher.holders(video):
                if float(rate_matrix[video, s]) <= 0.0 or not servers[s].is_up:
                    return True
            return False

        def handle(event) -> None:
            """Apply one departure/failure/recovery/retry/replicate event."""
            nonlocal streams_dropped, events_processed, num_failures
            nonlocal num_recoveries, num_retries, num_failovers
            nonlocal num_lost_to_failure, num_rereplicated, ttr_sum
            events_processed += 1
            if event.kind == EventKind.DEPARTURE:
                server_id, rate, redirected, epoch = event.payload
                server = servers[server_id]
                if server.epoch != epoch:
                    return  # stream already dropped by a crash
                server.release(event.time, rate)
                if redirected and backbones is not None:
                    backbones[server_id // servers_per_pod].release(rate)
                    backbone_by_server[server_id] -= rate
            elif event.kind == EventKind.FAILURE:
                failure = event.payload
                k = failure.server
                num_failures += 1
                down_since[k] = event.time
                streams_dropped += servers[k].fail(event.time)
                if backbones is not None and backbone_by_server[k] > 0:
                    backbones[k // servers_per_pod].release(
                        float(backbone_by_server[k])
                    )
                    backbone_by_server[k] = 0.0
                if rerep is not None:
                    lost = lost_by_server[k]
                    for v in np.flatnonzero(self._rate_matrix[:, k] > 0.0):
                        v = int(v)
                        if float(rate_matrix[v, k]) > 0.0:
                            rate_matrix[v, k] = 0.0
                            lost.append(v)
                if np.isfinite(failure.recovery_min):
                    events.push(failure.recovery_min, EventKind.RECOVERY, k)
            elif event.kind == EventKind.RECOVERY:
                k = event.payload
                servers[k].recover(event.time)
                num_recoveries += 1
                delta = event.time - down_since.pop(k)
                downtime[k] += delta
                ttr_sum += delta
                if rerep is not None and lost_by_server[k]:
                    from ..dynamic.migration import plan_rereplication

                    lost = lost_by_server[k]
                    plan = plan_rereplication(
                        lost,
                        self._durations,
                        {v: float(self._rate_matrix[v, k]) for v in lost},
                        migration_mbps=rerep.migration_mbps,
                    )
                    epoch = servers[k].epoch
                    for v, offset in plan:
                        done = event.time + offset
                        if done <= horizon_min:
                            events.push(
                                done, EventKind.REPLICATE, (k, v, epoch)
                            )
            elif event.kind == EventKind.RETRY:
                video, hold, attempt = event.payload
                tr = event.time
                saved = False
                for server_id in failover_order(
                    dispatcher.holders(video), servers
                ):
                    rate = float(rate_matrix[video, server_id])
                    if rate > 0.0 and servers[server_id].can_admit(rate):
                        server = servers[server_id]
                        server.admit(tr, rate)
                        events.push(
                            tr + hold,
                            EventKind.DEPARTURE,
                            (server_id, rate, False, server.epoch),
                        )
                        num_failovers += 1
                        saved = True
                        break
                if not saved:
                    if attempt < retry_policy.max_retries:
                        nxt = tr + retry_policy.delay_min(attempt)
                        if nxt <= horizon_min:
                            events.push(
                                nxt, EventKind.RETRY, (video, hold, attempt + 1)
                            )
                            num_retries += 1
                            return
                    # Retry budget (or horizon) exhausted: a timeout is a
                    # rejection.
                    per_video_rejected[video] += 1
                    if failure_touched(video):
                        num_lost_to_failure += 1
            elif event.kind == EventKind.REPLICATE:
                k, v, epoch = event.payload
                if servers[k].epoch == epoch:
                    rate_matrix[v, k] = self._rate_matrix[v, k]
                    lost_by_server[k].remove(v)
                    num_rereplicated += 1

        def drain(until: float) -> None:
            """Handle every queued event up to *until* (inclusive).

            Re-checks the queue after each event because handling a
            failure schedules its recovery, which may also fall inside
            the window.
            """
            while events and events.peek().time <= until:
                handle(events.pop())

        num_videos = self._videos.num_videos
        per_video_requests = np.zeros(num_videos, dtype=np.int64)
        per_video_rejected = np.zeros(num_videos, dtype=np.int64)

        # Shared struct-of-arrays request columns (validation, hold times,
        # horizon cut) — the same preparation the optimized loop uses, so
        # the two loops cannot drift on truncation or watch-time rules.
        # An arrival at exactly ``horizon_min`` is still simulated.
        soa = RequestSoA.from_trace(trace, self._durations, horizon_min)
        times = soa.times
        videos = soa.videos
        hold_min = soa.holds
        num_truncated = soa.num_truncated

        for index in range(soa.num_simulated):
            t = float(times[index])
            video = int(videos[index])
            # Apply departures/failures/recoveries at or before t.
            drain(t)

            events_processed += 1
            per_video_requests[video] += 1
            if self._best_rates[video] <= 0.0:
                # Video has no replica anywhere: nothing can serve it.
                per_video_rejected[video] += 1
                continue
            end_time = t + float(hold_min[index])

            candidates = list(dispatcher.candidates(video, servers))
            if failover_on_down and any(
                not servers[s].is_up for s in candidates
            ):
                # Replication's availability payoff: retry the remaining
                # holders when the dispatched server has crashed.
                extra = [
                    int(s)
                    for s in dispatcher.holders(video)
                    if int(s) not in candidates
                ]
                extra.sort(key=lambda s: servers[s].utilization)
                candidates.extend(extra)

            admitted = False
            for server_id in candidates:
                rate = float(rate_matrix[video, server_id])
                if rate > 0.0 and servers[server_id].can_admit(rate):
                    server = servers[server_id]
                    server.admit(t, rate)
                    events.push(
                        end_time,
                        EventKind.DEPARTURE,
                        (server_id, rate, False, server.epoch),
                    )
                    admitted = True
                    break

            if not admitted and backbones is not None and (
                rerep is None
                or any(
                    float(rate_matrix[video, s]) > 0.0
                    for s in dispatcher.holders(video)
                )
            ):
                # Redirection: any server in the video's pod with free
                # outgoing bandwidth may stream the video's best copy over
                # the pod's backbone — gated, under re-replication, on
                # some replica actually existing.
                rate = float(self._best_rates[video])
                pod = video // videos_per_pod
                backbone = backbones[pod]
                if backbone.can_carry(rate):
                    delegate = self._least_utilized_with_room(
                        pod_servers[pod], rate
                    )
                    if delegate is not None:
                        backbone.acquire(rate)
                        backbone_by_server[delegate] += rate
                        servers[delegate].admit(t, rate)
                        events.push(
                            end_time,
                            EventKind.DEPARTURE,
                            (delegate, rate, True, servers[delegate].epoch),
                        )
                        admitted = True

            if not admitted:
                if retry_policy is not None and (
                    retry_policy.retry_saturated or failure_touched(video)
                ):
                    nxt = t + retry_policy.delay_min(0)
                    if nxt <= horizon_min:
                        events.push(
                            nxt,
                            EventKind.RETRY,
                            (video, float(hold_min[index]), 1),
                        )
                        num_retries += 1
                    else:
                        per_video_rejected[video] += 1
                        if failure_touched(video):
                            num_lost_to_failure += 1
                else:
                    per_video_rejected[video] += 1
                    if chaos and failure_touched(video):
                        num_lost_to_failure += 1

        # Apply remaining events inside the horizon, close the integrals.
        drain(horizon_min)
        for server in servers:
            server.advance(horizon_min)
        # Servers still down at the horizon accrue downtime to its edge.
        for k, since in down_since.items():
            downtime[k] += horizon_min - since

        return SimulationResult(
            num_requests=int(per_video_requests.sum()),
            num_rejected=int(per_video_rejected.sum()),
            per_video_requests=per_video_requests,
            per_video_rejected=per_video_rejected,
            server_time_avg_load_mbps=np.array(
                [s.time_avg_load_mbps(horizon_min) for s in servers]
            ),
            server_peak_load_mbps=np.array([s.peak_load_mbps for s in servers]),
            server_served=np.array([s.served_requests for s in servers]),
            server_bandwidth_mbps=self._cluster.bandwidth_mbps,
            horizon_min=float(horizon_min),
            num_redirected=(
                sum(b.redirected_streams for b in backbones)
                if backbones is not None
                else 0
            ),
            streams_dropped=streams_dropped,
            num_truncated=num_truncated,
            num_events=events_processed,
            num_failures=num_failures,
            num_recoveries=num_recoveries,
            num_retries=num_retries,
            num_failovers=num_failovers,
            num_lost_to_failure=num_lost_to_failure,
            num_rereplicated=num_rereplicated,
            mean_time_to_recovery_min=(
                ttr_sum / num_recoveries if num_recoveries else 0.0
            ),
            server_downtime_min=np.asarray(downtime),
            wall_time_sec=time.perf_counter() - start_wall,
        )

"""Replica placement algorithms (systems S7-S8).

A placement maps every replica produced by a replication algorithm onto a
server, subject to per-server storage (``C`` replicas in the fixed-rate
setting) and the distinct-server constraint (Eq. 6), aiming to minimize the
load-imbalance degree ``L`` over the per-replica communication weights.

* :class:`SmallestLoadFirstPlacer` — the paper's Algorithm 1 with the
  Theorem 2 bound ``L <= max_i w_i - min_i w_i``.
* :class:`RoundRobinPlacer` — the baseline; optimal when all weights are
  equal (Sec. 4.2).
* :class:`GreedyLeastLoadedPlacer` — round-free greedy extension (supports
  heterogeneous clusters).
* :class:`RandomFeasiblePlacer` — randomized reference placer for tests.
* :class:`PopularityStripePlacer` — rotating popularity-ordered stripe,
  the placement half of the Tan–Massoulié P2P scheme.
"""

from .base import PlacementError, Placer, validate_placement_inputs
from .bounds import placement_imbalance, slf_imbalance_bound, theorem2_holds
from .greedy import GreedyLeastLoadedPlacer, greedy_least_loaded_placement
from .local_search import RefinementResult, refine_placement
from .p2p import PopularityStripePlacer, p2p_stripe_placement
from .random_feasible import RandomFeasiblePlacer, random_feasible_placement
from .round_robin import RoundRobinPlacer, round_robin_placement
from .slf import SmallestLoadFirstPlacer, smallest_load_first_placement

__all__ = [
    "PlacementError",
    "Placer",
    "validate_placement_inputs",
    "placement_imbalance",
    "slf_imbalance_bound",
    "theorem2_holds",
    "GreedyLeastLoadedPlacer",
    "greedy_least_loaded_placement",
    "RefinementResult",
    "refine_placement",
    "PopularityStripePlacer",
    "p2p_stripe_placement",
    "RandomFeasiblePlacer",
    "random_feasible_placement",
    "RoundRobinPlacer",
    "round_robin_placement",
    "SmallestLoadFirstPlacer",
    "smallest_load_first_placement",
]

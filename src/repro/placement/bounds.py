"""Theoretical bounds on placement quality (Theorems 2 and 3).

Theorem 2: the smallest-load-first placement keeps the load-imbalance degree
(Eq. 2 over summed communication weights) within
``max_i w_i - min_i w_i``.

Theorem 3: combined with the replication algorithms, this upper bound is
non-increasing in the replication degree (more replicas -> finer weight
granularity -> tighter bound).

Two preconditions the paper leaves implicit (found by property testing and
recorded in EXPERIMENTS.md):

* The telescoping proof of Theorem 2 assumes every placement round hands
  one replica to *every* server, i.e. the total replica count is a
  multiple of ``N``.  With a partial final round a server may end one
  replica short, adding at most one replica weight to the imbalance —
  :func:`slf_imbalance_bound` with ``partial_round_slack=True`` returns
  the corrected bound ``(max w - min w) + max w``.  Counterexample for
  the strict bound: two videos of weight 0.5 on three servers (L = 1/3,
  strict bound 0).
* Theorem 3 speaks of the bound's trend; individual budget steps can
  raise ``max w - min w`` slightly because a duplication may lower the
  *minimum* weight (see tests/test_placement.py).

The paper's own evaluation always uses budgets divisible by ``N`` (degrees
1.0-2.0 on 200 videos over 8 servers), where the strict bound holds.
"""

from __future__ import annotations

import numpy as np

from ..model.layout import ReplicaLayout
from ..model.objective import ImbalanceMetric, load_imbalance
from ..replication.base import ReplicationResult

__all__ = ["slf_imbalance_bound", "placement_imbalance", "theorem2_holds"]


def slf_imbalance_bound(
    replication: ReplicationResult, *, partial_round_slack: bool = False
) -> float:
    """Theorem 2's bound: ``max_i w_i - min_i w_i``.

    With ``partial_round_slack=True`` the bound is widened by one maximum
    weight, which also covers totals that are not a multiple of ``N``
    (see module docstring).
    """
    bound = replication.weight_spread()
    if partial_round_slack:
        bound += replication.max_weight()
    return bound


def placement_imbalance(
    layout: ReplicaLayout,
    popularity: np.ndarray,
    metric: ImbalanceMetric = ImbalanceMetric.MAX_DEVIATION,
) -> float:
    """Load-imbalance degree of a layout in weight space.

    The per-server load is the sum of the communication weights of the
    replicas it holds — the quantity Theorems 2 and 3 speak about (scaling
    by ``lambda * T * b`` turns it into Mb/s but does not change ratios).
    """
    weights = layout.replica_weights(popularity)
    return load_imbalance(weights.sum(axis=0), metric)


def theorem2_holds(
    layout: ReplicaLayout,
    replication: ReplicationResult,
    *,
    atol: float = 1e-12,
) -> bool:
    """Whether the layout's Eq. (2) imbalance is within the Theorem 2 bound.

    The strict bound applies when the total replica count is a multiple of
    ``N`` (the paper's setting); otherwise the partial-final-round slack is
    included automatically (see module docstring).
    """
    partial = replication.total_replicas % replication.num_servers != 0
    imbalance = placement_imbalance(layout, replication.popularity)
    bound = slf_imbalance_bound(replication, partial_round_slack=partial)
    return imbalance <= bound + atol

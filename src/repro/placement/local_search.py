"""Swap-based placement refinement (the paper's reference [22] technique).

Wolf et al.'s "DASD dancing" balances disk load by *moving and swapping*
replicas after an initial placement; the paper borrows its replication
optimization but not its refinement step.  This module adds it: starting
from any feasible layout, hill-climb on the Eq. (2) imbalance by

1. **moves** — relocate one replica from the currently most-deviant
   overloaded server to a feasible underloaded server, and
2. **swaps** — exchange two replicas between an overloaded and an
   underloaded server when no single move is feasible/improving.

The total communication weight is invariant, so the mean load is fixed and
every accepted step strictly reduces ``max_k |l_k - mean|``; termination is
guaranteed.  SLF is already within the Theorem 2 bound, but refinement
typically removes another large share of the residual imbalance —
quantified in the test suite and usable on any placer's output (including
round robin, which it improves dramatically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_int_in_range, check_probability_vector
from ..model.layout import ReplicaLayout
from ..model.objective import communication_weights

__all__ = ["RefinementResult", "refine_placement"]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of a refinement pass."""

    layout: ReplicaLayout
    initial_imbalance: float
    final_imbalance: float
    moves: int
    swaps: int

    @property
    def improvement(self) -> float:
        """Absolute reduction of the Eq. (2) imbalance."""
        return self.initial_imbalance - self.final_imbalance


def _imbalance(loads: np.ndarray) -> float:
    return float(np.abs(loads - loads.mean()).max())


def refine_placement(
    layout: ReplicaLayout,
    popularity: np.ndarray,
    capacity_replicas: int,
    *,
    max_steps: int = 10_000,
    tol: float = 1e-15,
) -> RefinementResult:
    """Hill-climb the layout's Eq. (2) imbalance via moves and swaps.

    Parameters
    ----------
    layout:
        Any feasible fixed-rate layout (the bit rate is preserved).
    popularity:
        The popularity vector defining the communication weights.
    capacity_replicas:
        Per-server storage capacity ``C``.
    max_steps:
        Hard cap on accepted steps (each strictly improves, so this is a
        safety bound, not a tuning knob).
    """
    probs = check_probability_vector("popularity", popularity)
    check_int_in_range("capacity_replicas", capacity_replicas, 1)
    if probs.shape != (layout.num_videos,):
        raise ValueError("popularity must have one entry per video")
    if int(layout.server_replica_counts().max()) > capacity_replicas:
        raise ValueError("layout already exceeds capacity_replicas")
    if not layout.total_replicas:
        # No replicas means no loads to balance and no bit rate to carry
        # over into the refined layout; a silent fallback rate here would
        # fabricate a layout the caller never described.
        raise ValueError("cannot refine an empty layout (no replicas)")

    holds = layout.presence.copy()
    weights = communication_weights(probs, layout.replica_counts)
    rate = float(layout.rate_matrix.max())

    loads = (holds * weights[:, None]).sum(axis=0)
    storage = holds.sum(axis=0).astype(np.int64)
    initial = _imbalance(loads)
    current = initial
    moves = swaps = 0

    for _ in range(max_steps):
        step = _best_step(holds, loads, storage, weights, capacity_replicas)
        if step is None or step.gain <= tol:
            break
        step.apply(holds, loads, storage)
        current = _imbalance(loads)
        if step.is_swap:
            swaps += 1
        else:
            moves += 1

    refined = ReplicaLayout(rate_matrix=np.where(holds, rate, 0.0))
    return RefinementResult(
        layout=refined,
        initial_imbalance=initial,
        final_imbalance=current,
        moves=moves,
        swaps=swaps,
    )


@dataclass
class _Step:
    """One candidate relocation: a move, or a swap when ``video_b >= 0``.

    ``weight_a``/``weight_b`` cache the communication weights used when the
    step was evaluated, so applying it adjusts the load vector with exactly
    the numbers the gain was computed from.
    """

    gain: float
    video_a: int
    src: int
    dst: int
    weight_a: float
    video_b: int = -1
    weight_b: float = 0.0

    @property
    def is_swap(self) -> bool:
        return self.video_b >= 0

    def apply(
        self, holds: np.ndarray, loads: np.ndarray, storage: np.ndarray
    ) -> None:
        holds[self.video_a, self.src] = False
        holds[self.video_a, self.dst] = True
        loads[self.src] -= self.weight_a
        loads[self.dst] += self.weight_a
        storage[self.src] -= 1
        storage[self.dst] += 1
        if self.is_swap:
            holds[self.video_b, self.dst] = False
            holds[self.video_b, self.src] = True
            loads[self.dst] -= self.weight_b
            loads[self.src] += self.weight_b
            storage[self.dst] -= 1
            storage[self.src] += 1


def _best_step(
    holds: np.ndarray,
    loads: np.ndarray,
    storage: np.ndarray,
    weights: np.ndarray,
    capacity: int,
) -> _Step | None:
    """Best single move/swap reducing the max deviation, or None."""
    mean = float(loads.mean())
    current = float(np.abs(loads - mean).max())
    order_hot = np.argsort(-loads)
    best: _Step | None = None

    def consider(step: _Step, new_src: float, new_dst: float, src: int, dst: int):
        nonlocal best
        trial = loads.copy()
        trial[src] = new_src
        trial[dst] = new_dst
        gain = current - float(np.abs(trial - mean).max())
        if gain > 0 and (best is None or gain > best.gain):
            step.gain = gain
            best = step

    # Focus on the most deviant overloaded server; also consider filling
    # the most underloaded one from any hotter server.
    hot = int(order_hot[0])
    cold = int(order_hot[-1])
    sources = {hot}
    if loads.mean() - loads[cold] > loads[hot] - loads.mean():
        # The deficit side dominates: pull work toward the cold server.
        sources.update(int(s) for s in order_hot[:-1])

    for src in sources:
        for video in np.flatnonzero(holds[:, src]):
            video = int(video)
            w_a = float(weights[video])
            feasible = ~holds[video] & (storage < capacity)
            feasible[src] = False
            for dst in np.flatnonzero(feasible):
                dst = int(dst)
                if loads[dst] >= loads[src]:
                    continue
                step = _Step(0.0, video, src, dst, weight_a=w_a)
                consider(step, loads[src] - w_a, loads[dst] + w_a, src, dst)
        # Swaps out of the hot server when moves are blocked by storage.
        if src == hot:
            for video in np.flatnonzero(holds[:, src]):
                video = int(video)
                w_a = float(weights[video])
                for dst in np.flatnonzero(~holds[video]):
                    dst = int(dst)
                    if dst == src or loads[dst] >= loads[src]:
                        continue
                    partners = np.flatnonzero(holds[:, dst] & ~holds[:, src])
                    for other in partners:
                        other = int(other)
                        w_b = float(weights[other])
                        if w_b >= w_a:
                            continue  # only net-load-reducing exchanges
                        step = _Step(
                            0.0, video, src, dst,
                            weight_a=w_a, video_b=other, weight_b=w_b,
                        )
                        consider(
                            step,
                            loads[src] - w_a + w_b,
                            loads[dst] + w_a - w_b,
                            src,
                            dst,
                        )
    return best

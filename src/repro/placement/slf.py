"""Smallest-load-first placement (the paper's Algorithm 1).

Replicas are grouped per video and the groups sorted non-increasingly by
communication weight.  The placement proceeds in ``C`` rounds; each round
takes the next ``N`` heaviest replicas and deals them out so that the
heaviest replica goes to the least-loaded server that does not already hold
a replica of the same video, the next replica to the least-loaded remaining
server, and so on (each server receives at most one replica per round, which
keeps storage balanced).

Theorem 2 bounds the resulting load-imbalance degree (Eq. 2 over the summed
weights) by ``max_i w_i - min_i w_i``; Theorem 3 notes the bound is
non-increasing in the replication degree.  Both are exercised by the
property-based tests.

When the strict one-per-server-per-round rule would strand a replica (every
unused server already holds the video), the rule is relaxed for that replica
to any feasible server with storage left — the same effect as the paper's
"placed to the server with the second smallest load, and so on" tie-walk in
Figure 3, extended to guarantee termination on adversarial instances.
"""

from __future__ import annotations

import numpy as np

from ..model.layout import ReplicaLayout
from ..replication.base import ReplicationResult
from .base import PlacementError, Placer, sorted_replica_stream, validate_placement_inputs

__all__ = ["smallest_load_first_placement", "SmallestLoadFirstPlacer"]


def smallest_load_first_placement(
    replication: ReplicationResult,
    capacity_replicas: int,
    *,
    bit_rate_mbps: float = 4.0,
) -> ReplicaLayout:
    """Run Algorithm 1 and return the placed layout.

    Parameters
    ----------
    replication:
        Replica counts and weights from any replication algorithm.
    capacity_replicas:
        Per-server storage capacity ``C`` in replicas.
    bit_rate_mbps:
        Rate label stamped on every placed replica.
    """
    validate_placement_inputs(replication, capacity_replicas)
    num_servers = replication.num_servers
    stream = sorted_replica_stream(replication)
    weights = replication.weights()

    loads = np.zeros(num_servers, dtype=np.float64)
    storage_left = np.full(num_servers, capacity_replicas, dtype=np.int64)
    holds = np.zeros((replication.num_videos, num_servers), dtype=bool)

    position = 0
    total = stream.size
    while position < total:
        batch = stream[position : position + num_servers]
        position += batch.size
        used_this_round = np.zeros(num_servers, dtype=bool)
        for video in batch:
            video = int(video)
            # Preferred rule: unused this round, not holding the video,
            # storage available; smallest load first.
            feasible = ~used_this_round & ~holds[video] & (storage_left > 0)
            if not feasible.any():
                # Relaxation: drop the one-per-round restriction.
                feasible = ~holds[video] & (storage_left > 0)
            if not feasible.any():
                raise PlacementError(
                    f"no feasible server for a replica of video {video}: "
                    "all servers either hold the video or are out of storage"
                )
            masked = np.where(feasible, loads, np.inf)
            server = int(np.argmin(masked))
            holds[video, server] = True
            used_this_round[server] = True
            storage_left[server] -= 1
            loads[server] += weights[video]

    matrix = np.where(holds, bit_rate_mbps, 0.0)
    return ReplicaLayout(rate_matrix=matrix)


class SmallestLoadFirstPlacer(Placer):
    """Object-style wrapper around :func:`smallest_load_first_placement`."""

    name = "slf"

    def place(
        self,
        replication: ReplicationResult,
        capacity_replicas: int,
        *,
        bit_rate_mbps: float = 4.0,
    ) -> ReplicaLayout:
        return smallest_load_first_placement(
            replication, capacity_replicas, bit_rate_mbps=bit_rate_mbps
        )

"""Shared interface and input validation for placement algorithms."""

from __future__ import annotations

import abc

import numpy as np

from .._validation import check_int_in_range
from ..model.layout import ReplicaLayout
from ..replication.base import ReplicationResult

__all__ = ["PlacementError", "Placer", "validate_placement_inputs"]


class PlacementError(RuntimeError):
    """Raised when a placer cannot produce a feasible layout."""


def validate_placement_inputs(
    replication: ReplicationResult, capacity_replicas: int
) -> None:
    """Check that a feasible placement exists for the replica counts.

    A layout exists iff every ``r_i <= N`` (guaranteed by
    :class:`ReplicationResult`) and the total replica count does not exceed
    the cluster storage ``N * C`` — the round-robin construction then always
    succeeds (see :mod:`repro.placement.round_robin`).
    """
    check_int_in_range("capacity_replicas", capacity_replicas, 1)
    total = replication.total_replicas
    available = replication.num_servers * capacity_replicas
    if total > available:
        raise PlacementError(
            f"{total} replicas exceed cluster storage of {available} "
            f"({replication.num_servers} servers x {capacity_replicas} replicas)"
        )


def sorted_replica_stream(replication: ReplicationResult) -> np.ndarray:
    """Video index of each replica, ordered by non-increasing weight.

    This realizes steps 1-2 of Algorithm 1: replicas of one video form a
    group with a common weight ``w_i = p_i / r_i``, and the groups are
    sorted non-increasingly.  Ties break toward the lower video index for
    determinism.
    """
    weights = replication.weights()
    order = np.argsort(-weights, kind="stable")
    return np.repeat(order, replication.replica_counts[order])


class Placer(abc.ABC):
    """Interface of a placement algorithm.

    ``place`` returns a fixed-rate :class:`ReplicaLayout`; the bit rate is a
    pure labelling concern (the placement itself happens in weight space).
    """

    #: Short machine-friendly name used in experiment tables.
    name: str = "placer"

    @abc.abstractmethod
    def place(
        self,
        replication: ReplicationResult,
        capacity_replicas: int,
        *,
        bit_rate_mbps: float = 4.0,
    ) -> ReplicaLayout:
        """Map every replica to a server and return the resulting layout."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"

"""Popularity-ordered striping placement (the P2P scheme's counterpart).

Tan & Massoulié's P2P model stripes each video's replicas across as many
boxes as it has copies, so concurrent swarms for different hot videos
decorrelate.  On the cluster this becomes: walk the videos from hottest
to coldest and deal each video's ``r_i`` replicas onto the next ``r_i``
*distinct* servers in cyclic order, advancing the stripe offset by
``r_i`` per video.  The rotating offset is what distinguishes this from
:func:`repro.placement.round_robin.round_robin_placement` with
``sort_by_weight=True``: consecutive hot videos start their stripes on
*different* servers, so the heads of the popularity distribution spread
instead of piling onto the low-id servers.

Servers whose storage is exhausted are skipped; because the deal keeps
per-server fill levels within one replica of each other, a feasible
instance (``sum r_i <= N * C``, guaranteed by
:func:`~repro.placement.base.validate_placement_inputs`) always places.
"""

from __future__ import annotations

import numpy as np

from ..model.layout import ReplicaLayout
from ..replication.base import ReplicationResult
from .base import PlacementError, Placer, validate_placement_inputs

__all__ = ["p2p_stripe_placement", "PopularityStripePlacer"]


def p2p_stripe_placement(
    replication: ReplicationResult,
    capacity_replicas: int,
    *,
    bit_rate_mbps: float = 4.0,
) -> ReplicaLayout:
    """Deal each video's replicas onto a rotating stripe of servers."""
    validate_placement_inputs(replication, capacity_replicas)
    num_servers = replication.num_servers
    num_videos = replication.num_videos
    counts = replication.replica_counts

    order = np.argsort(-replication.popularity, kind="stable")
    fill = np.zeros(num_servers, dtype=np.int64)
    matrix = np.zeros((num_videos, num_servers), dtype=np.float64)
    offset = 0
    for video in order:
        needed = int(counts[video])
        placed = 0
        for step in range(num_servers):
            server = (offset + step) % num_servers
            if fill[server] >= capacity_replicas:
                continue
            matrix[video, server] = bit_rate_mbps
            fill[server] += 1
            placed += 1
            if placed == needed:
                break
        if placed != needed:  # pragma: no cover - structural guard
            raise PlacementError(
                f"stripe ran out of distinct servers for video {video} "
                f"({placed} of {needed} replicas placed)"
            )
        offset = (offset + needed) % num_servers
    return ReplicaLayout(rate_matrix=matrix)


class PopularityStripePlacer(Placer):
    """Object-style wrapper around :func:`p2p_stripe_placement`."""

    name = "p2p_stripe"

    def place(
        self,
        replication: ReplicationResult,
        capacity_replicas: int,
        *,
        bit_rate_mbps: float = 4.0,
    ) -> ReplicaLayout:
        return p2p_stripe_placement(
            replication,
            capacity_replicas,
            bit_rate_mbps=bit_rate_mbps,
        )

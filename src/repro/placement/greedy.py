"""Round-free greedy least-loaded placement (extension).

Drops Algorithm 1's one-replica-per-server-per-round rule and simply sends
every replica (heaviest first) to the least-loaded feasible server.  Storage
balance is no longer structural, so the storage constraint is enforced
directly.  This variant generalizes naturally to heterogeneous clusters:
loads can be normalized by per-server bandwidth shares so a twice-as-fat
server absorbs twice the weight.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..model.layout import ReplicaLayout
from ..replication.base import ReplicationResult
from .base import PlacementError, Placer, sorted_replica_stream, validate_placement_inputs

__all__ = ["greedy_least_loaded_placement", "GreedyLeastLoadedPlacer"]


def greedy_least_loaded_placement(
    replication: ReplicationResult,
    capacity_replicas: int | np.ndarray,
    *,
    bit_rate_mbps: float = 4.0,
    server_shares: np.ndarray | None = None,
) -> ReplicaLayout:
    """Place each replica on the least (relative) loaded feasible server.

    Parameters
    ----------
    capacity_replicas:
        Either a scalar ``C`` (homogeneous storage) or a per-server array.
    server_shares:
        Optional positive per-server capacity shares; the greedy compares
        ``load_k / share_k`` so bigger servers attract more weight.  Default
        is equal shares (the homogeneous case).
    """
    num_servers = replication.num_servers
    if np.isscalar(capacity_replicas):
        validate_placement_inputs(replication, int(capacity_replicas))
        storage_left = np.full(num_servers, int(capacity_replicas), dtype=np.int64)
    else:
        storage_left = np.asarray(capacity_replicas, dtype=np.int64).copy()
        if storage_left.shape != (num_servers,):
            raise ValueError(
                f"capacity_replicas must be scalar or shape ({num_servers},)"
            )
        if replication.total_replicas > int(storage_left.sum()):
            raise PlacementError("replicas exceed total cluster storage")

    if server_shares is None:
        shares = np.ones(num_servers, dtype=np.float64)
    else:
        shares = as_float_array("server_shares", server_shares)
        if shares.shape != (num_servers,) or np.any(shares <= 0):
            raise ValueError("server_shares must be positive, one per server")

    stream = sorted_replica_stream(replication)
    weights = replication.weights()
    loads = np.zeros(num_servers, dtype=np.float64)
    holds = np.zeros((replication.num_videos, num_servers), dtype=bool)

    for video in stream:
        video = int(video)
        feasible = ~holds[video] & (storage_left > 0)
        if not feasible.any():
            raise PlacementError(
                f"no feasible server for a replica of video {video}"
            )
        relative = np.where(feasible, loads / shares, np.inf)
        server = int(np.argmin(relative))
        holds[video, server] = True
        storage_left[server] -= 1
        loads[server] += weights[video]

    return ReplicaLayout(rate_matrix=np.where(holds, bit_rate_mbps, 0.0))


class GreedyLeastLoadedPlacer(Placer):
    """Object-style wrapper around :func:`greedy_least_loaded_placement`."""

    name = "greedy"

    def __init__(self, *, server_shares: np.ndarray | None = None) -> None:
        self._server_shares = server_shares

    def place(
        self,
        replication: ReplicationResult,
        capacity_replicas: int,
        *,
        bit_rate_mbps: float = 4.0,
    ) -> ReplicaLayout:
        return greedy_least_loaded_placement(
            replication,
            capacity_replicas,
            bit_rate_mbps=bit_rate_mbps,
            server_shares=self._server_shares,
        )

"""Round-robin placement — the evaluation's placement baseline.

Replicas are arranged in per-video groups in an arbitrary (here: video-id)
order ``v_1^1 .. v_1^{r_1}, v_2^1 .. v_2^{r_2}, ...`` and dealt to servers
cyclically: replica ``j`` goes to server ``j mod N``.  Because every group
has at most ``N`` replicas, consecutive replicas of one video always land on
distinct servers (Eq. 6), and each server receives at most ``ceil(R / N)``
replicas, which fits whenever the replica budget fits the cluster — so this
construction also serves as the feasibility witness used by
:func:`repro.placement.base.validate_placement_inputs`.

The paper shows this placement is *optimal* when all per-replica weights are
equal and uses it as the baseline otherwise (Sec. 4.2, Sec. 5).
"""

from __future__ import annotations

import numpy as np

from ..model.layout import ReplicaLayout
from ..replication.base import ReplicationResult
from .base import PlacementError, Placer, sorted_replica_stream, validate_placement_inputs

__all__ = ["round_robin_placement", "RoundRobinPlacer"]


def round_robin_placement(
    replication: ReplicationResult,
    capacity_replicas: int,
    *,
    bit_rate_mbps: float = 4.0,
    sort_by_weight: bool = False,
) -> ReplicaLayout:
    """Deal replicas to servers cyclically.

    Parameters
    ----------
    sort_by_weight:
        When False (default) groups appear in video-id order, the paper's
        "arbitrary order".  When True the groups are first sorted by weight,
        which makes the deal deterministic with respect to popularity and is
        occasionally useful in analyses.
    """
    validate_placement_inputs(replication, capacity_replicas)
    num_servers = replication.num_servers

    if sort_by_weight:
        stream = sorted_replica_stream(replication)
    else:
        counts = replication.replica_counts
        stream = np.repeat(np.arange(replication.num_videos), counts)

    servers = np.arange(stream.size) % num_servers
    matrix = np.zeros((replication.num_videos, num_servers), dtype=np.float64)
    if np.any(matrix[stream, servers] > 0):  # pragma: no cover - structural
        raise PlacementError("round-robin produced a duplicate assignment")
    matrix[stream, servers] = bit_rate_mbps
    # The cyclic deal guarantees Eq. 6 because each group spans consecutive
    # positions and r_i <= N; assert cheaply to catch representation bugs.
    placed = (matrix > 0).sum()
    if placed != stream.size:  # pragma: no cover - structural
        raise PlacementError(
            f"round-robin merged replicas: placed {placed} of {stream.size}"
        )
    return ReplicaLayout(rate_matrix=matrix)


class RoundRobinPlacer(Placer):
    """Object-style wrapper around :func:`round_robin_placement`."""

    name = "rr"

    def __init__(self, *, sort_by_weight: bool = False) -> None:
        self._sort_by_weight = bool(sort_by_weight)

    def place(
        self,
        replication: ReplicationResult,
        capacity_replicas: int,
        *,
        bit_rate_mbps: float = 4.0,
    ) -> ReplicaLayout:
        return round_robin_placement(
            replication,
            capacity_replicas,
            bit_rate_mbps=bit_rate_mbps,
            sort_by_weight=self._sort_by_weight,
        )

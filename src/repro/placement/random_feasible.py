"""Randomized feasible placement — a reference point for tests and analyses.

Places replicas in random order on a uniformly random feasible server.  Its
expected imbalance is markedly worse than SLF's, which the test suite uses
as a sanity check that SLF's ordering actually matters.
"""

from __future__ import annotations

import numpy as np

from ..model.layout import ReplicaLayout
from ..replication.base import ReplicationResult
from .base import PlacementError, Placer, validate_placement_inputs

__all__ = ["random_feasible_placement", "RandomFeasiblePlacer"]


def random_feasible_placement(
    replication: ReplicationResult,
    capacity_replicas: int,
    rng: np.random.Generator,
    *,
    bit_rate_mbps: float = 4.0,
    max_restarts: int = 32,
) -> ReplicaLayout:
    """Place replicas randomly, restarting if the random order dead-ends.

    A uniformly random construction can paint itself into a corner (all
    storage-free servers already hold the video); the placer restarts with a
    fresh order up to ``max_restarts`` times before giving up.
    """
    validate_placement_inputs(replication, capacity_replicas)
    num_servers = replication.num_servers
    counts = replication.replica_counts
    base_stream = np.repeat(np.arange(replication.num_videos), counts)

    for _ in range(max_restarts):
        stream = rng.permutation(base_stream)
        storage_left = np.full(num_servers, capacity_replicas, dtype=np.int64)
        holds = np.zeros((replication.num_videos, num_servers), dtype=bool)
        stuck = False
        for video in stream:
            video = int(video)
            feasible = np.flatnonzero(~holds[video] & (storage_left > 0))
            if feasible.size == 0:
                stuck = True
                break
            server = int(rng.choice(feasible))
            holds[video, server] = True
            storage_left[server] -= 1
        if not stuck:
            return ReplicaLayout(rate_matrix=np.where(holds, bit_rate_mbps, 0.0))
    raise PlacementError(
        f"random placement failed to find a feasible layout in {max_restarts} restarts"
    )


class RandomFeasiblePlacer(Placer):
    """Object-style wrapper around :func:`random_feasible_placement`."""

    name = "random"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def place(
        self,
        replication: ReplicationResult,
        capacity_replicas: int,
        *,
        bit_rate_mbps: float = 4.0,
    ) -> ReplicaLayout:
        return random_feasible_placement(
            replication, capacity_replicas, self._rng, bit_rate_mbps=bit_rate_mbps
        )

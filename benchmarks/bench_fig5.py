"""E2 — regenerate the paper's Figure 5 (algorithm-combination comparison).

Writes the series to ``results/fig5.txt`` and asserts the paper's headline
ranking: Zipf+SLF never rejects more than classification+RR at saturation.
"""

import pytest

from conftest import emit
from repro.experiments.fig5 import format_fig5, run_fig5


@pytest.mark.benchmark(group="figures")
def test_fig5(benchmark, bench_setup, results_dir):
    results = benchmark.pedantic(
        run_fig5, args=(bench_setup,), rounds=1, iterations=1
    )
    rates = results["arrival_rates"]
    sat_index = rates.index(40)
    for subplot in results["subplots"].values():
        best = subplot["curves"]["zipf+slf"][sat_index]
        base = subplot["curves"]["class+rr"][sat_index]
        assert best <= base + 1e-9
    emit(results_dir, "fig5", format_fig5(results))

"""Benchmark the experiment engine: parallel speedup and cache hit path.

Runs one fig5-style sweep (2 combos x 4 arrival rates x ``num_runs``
trials at paper scale) three ways — serial, parallel on
``max(4, cpu_count)`` workers, and a warm-cache re-run — and writes the
three run reports plus the measured speedups to ``results/runtime.txt``.

On a multi-core host the parallel pass shows the near-linear trial fan-out
(the ISSUE's >= 3x on >= 4 workers); on a single-core container it
documents that the engine's overhead, not the pool, is what you measure.
The warm pass must simulate nothing regardless of hardware.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import emit
from repro.experiments import PAPER_COMBOS, PaperSetup, simulate_combo
from repro.runtime import ParallelRunner, ResultCache, use_runner

_RATES = (20.0, 30.0, 40.0, 45.0)


def _sweep(setup: PaperSetup) -> list:
    results = []
    for combo in (PAPER_COMBOS[0], PAPER_COMBOS[3]):
        for rate in _RATES:
            results.extend(simulate_combo(setup, combo, setup.theta_high, 1.2, rate))
    return results


def _timed(runner: ParallelRunner, setup: PaperSetup):
    with use_runner(runner):
        start = time.perf_counter()
        results = _sweep(setup)
        return results, time.perf_counter() - start


@pytest.mark.benchmark(group="runtime")
def test_runtime_engine(results_dir, tmp_path):
    setup = PaperSetup().quick(num_runs=6)
    jobs = max(4, os.cpu_count() or 1)

    with ParallelRunner(jobs=1) as serial_runner:
        serial, serial_sec = _timed(serial_runner, setup)
        serial_report = serial_runner.report.format()

    cache = ResultCache(tmp_path / "cache")
    with ParallelRunner(jobs=jobs, cache=cache) as parallel_runner:
        parallel, parallel_sec = _timed(parallel_runner, setup)
        parallel_report = parallel_runner.report.format()
        assert parallel_runner.report.num_simulated == len(serial)

    with ParallelRunner(jobs=jobs, cache=cache) as warm_runner:
        warm, warm_sec = _timed(warm_runner, setup)
        warm_report = warm_runner.report.format()
        # The cache contract: a warm re-run performs zero simulations.
        assert warm_runner.report.num_simulated == 0
        assert warm_runner.report.num_cache_hits == len(serial)

    # Determinism contract: identical aggregates across all three paths.
    assert all(a.same_outcome(b) for a, b in zip(serial, parallel))
    assert all(a.same_outcome(b) for a, b in zip(serial, warm))

    lines = [
        "Experiment-engine benchmark: fig5-style sweep "
        f"({len(serial)} trials at paper scale)",
        "",
        f"serial   (jobs=1):   {serial_sec:8.2f}s",
        f"parallel (jobs={jobs}):   {parallel_sec:8.2f}s  "
        f"speedup {serial_sec / parallel_sec:.2f}x on {os.cpu_count()} core(s)",
        f"warm cache (jobs={jobs}): {warm_sec:8.2f}s  "
        f"speedup {serial_sec / warm_sec:.2f}x, 0 simulations",
        "",
        "--- serial run report ---",
        serial_report,
        "--- parallel run report ---",
        parallel_report,
        "--- warm-cache run report ---",
        warm_report,
    ]
    emit(results_dir, "runtime", "\n".join(lines))

"""Kernel benchmarks: the replication algorithms.

Times each algorithm at the paper scale (M = 200, N = 8, degree 1.6) and at
a 100x catalogue to expose the complexity difference Sec. 4.1.2 claims:
Adams is ``O(M + NC log M)`` (grows with storage), the Zipf-interval search
``O(M log M)`` (does not).
"""

import pytest

from repro.popularity import zipf_probabilities
from repro.replication import (
    adams_replication,
    classification_replication,
    optimal_min_max_weight,
    proportional_replication,
    zipf_interval_replication,
)

PAPER = (200, 8, 320)
LARGE = (20_000, 8, 32_000)


def _probs(m):
    return zipf_probabilities(m, 0.75)


@pytest.mark.benchmark(group="replication-paper-scale")
class TestPaperScale:
    def test_adams(self, benchmark):
        probs = _probs(PAPER[0])
        result = benchmark(adams_replication, probs, PAPER[1], PAPER[2])
        assert result.total_replicas == PAPER[2]

    def test_zipf_interval(self, benchmark):
        probs = _probs(PAPER[0])
        result = benchmark(zipf_interval_replication, probs, PAPER[1], PAPER[2])
        assert result.total_replicas <= PAPER[2]

    def test_classification(self, benchmark):
        probs = _probs(PAPER[0])
        result = benchmark(classification_replication, probs, PAPER[1], PAPER[2])
        assert result.total_replicas <= PAPER[2]

    def test_proportional(self, benchmark):
        probs = _probs(PAPER[0])
        result = benchmark(proportional_replication, probs, PAPER[1], PAPER[2])
        assert result.total_replicas == PAPER[2]

    def test_exact_oracle(self, benchmark):
        probs = _probs(PAPER[0])
        value = benchmark(optimal_min_max_weight, probs, PAPER[1], PAPER[2])
        assert value > 0


@pytest.mark.benchmark(group="replication-large-catalogue")
class TestLargeCatalogue:
    """M = 20k: the regime where the Zipf search's complexity advantage
    over Adams (Sec. 4.1.2) becomes decisive."""

    def test_adams(self, benchmark):
        probs = _probs(LARGE[0])
        result = benchmark(adams_replication, probs, LARGE[1], LARGE[2])
        assert result.total_replicas == LARGE[2]

    def test_zipf_interval(self, benchmark):
        probs = _probs(LARGE[0])
        result = benchmark(zipf_interval_replication, probs, LARGE[1], LARGE[2])
        assert result.total_replicas <= LARGE[2]

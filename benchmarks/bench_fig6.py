"""E3 — regenerate the paper's Figure 6 (load-imbalance degree L(%)).

Writes the series to ``results/fig6.txt`` and asserts the paper's headline
ranking: classification+RR shows markedly higher imbalance than Zipf+SLF.
"""

import numpy as np
import pytest

from conftest import emit
from repro.experiments.fig6 import format_fig6, run_fig6


@pytest.mark.benchmark(group="figures")
def test_fig6(benchmark, bench_setup, results_dir):
    results = benchmark.pedantic(
        run_fig6, args=(bench_setup,), rounds=1, iterations=1
    )
    subplot = results["subplots"]["a"]
    mean_best = float(np.mean(subplot["curves"]["zipf+slf"]))
    mean_base = float(np.mean(subplot["curves"]["class+rr"]))
    assert mean_best < mean_base
    emit(results_dir, "fig6", format_fig6(results))

"""E8/E10/E11 — the extension experiments (availability, striping, dynamic).

Writes ``results/availability.txt``, ``results/striping.txt`` and
``results/dynamic.txt``.
"""

import numpy as np
import pytest

from conftest import emit
from repro.experiments.availability import format_availability, run_availability
from repro.experiments.dynamic_experiment import format_dynamic_study, run_dynamic_study
from repro.experiments.striping_comparison import (
    format_striping,
    run_load_sweep,
    run_scale_sweep,
)


@pytest.mark.benchmark(group="figures")
def test_availability(benchmark, bench_setup, results_dir):
    rows = benchmark.pedantic(
        run_availability,
        args=(bench_setup,),
        kwargs={"down_min": 30.0},
        rounds=1,
        iterations=1,
    )
    # Replication + failover must beat no-replication; striping's blast
    # radius must dwarf any replicated configuration.
    base = next(
        r
        for r in rows
        if r["system"] == "replicated deg=1" and r["mode"] == "reject"
    )
    best = next(
        r
        for r in rows
        if r["system"] == "replicated deg=1.6" and r["mode"] == "failover"
    )
    striped = next(r for r in rows if r["system"].startswith("striped"))
    assert best["rejection"] < base["rejection"]
    assert striped["streams_dropped"] > base["streams_dropped"]
    emit(results_dir, "availability", format_availability(rows))


@pytest.mark.benchmark(group="figures")
def test_striping(benchmark, bench_setup, results_dir):
    def body():
        return (
            run_load_sweep(bench_setup),
            run_scale_sweep(bench_setup, cluster_sizes=(4, 8, 16)),
        )

    load, scale = benchmark.pedantic(body, rounds=1, iterations=1)
    # Striping's scaling penalty grows with N while replication stays flat.
    assert scale["curves"]["striped"][-1] >= scale["curves"]["replicated"][-1]
    emit(results_dir, "striping", format_striping(load, scale))


@pytest.mark.benchmark(group="figures")
def test_batching(benchmark, bench_setup, results_dir):
    from repro.experiments.batching_experiment import format_batching, run_batching

    rows = benchmark.pedantic(
        run_batching, args=(bench_setup,), rounds=1, iterations=1
    )
    # Batching never rejects more than unicast at the same load, and the
    # factor grows with the window.
    by_rate: dict[float, list[dict]] = {}
    for row in rows:
        by_rate.setdefault(row["arrival_rate"], []).append(row)
    for cells in by_rate.values():
        cells.sort(key=lambda r: r["window_min"])
        assert cells[-1]["rejection"] <= cells[0]["rejection"] + 1e-9
        assert cells[-1]["batching_factor"] >= cells[0]["batching_factor"] - 1e-9
    emit(results_dir, "batching", format_batching(rows))


@pytest.mark.benchmark(group="figures")
def test_storage_bottleneck(benchmark, bench_setup, results_dir):
    from repro.experiments.storage_bottleneck import (
        format_storage,
        run_capacity_table,
        run_disk_bound_simulation,
    )

    def body():
        return run_capacity_table(bench_setup), run_disk_bound_simulation(bench_setup)

    capacity, simulation = benchmark.pedantic(body, rounds=1, iterations=1)
    # Disk-bound rejection falls monotonically toward the network-bound value.
    rejections = [r["rejection"] for r in simulation]
    assert rejections == sorted(rejections, reverse=True)
    emit(results_dir, "storage", format_storage(capacity, simulation))


@pytest.mark.benchmark(group="figures")
def test_dynamic(benchmark, bench_setup, results_dir):
    results = benchmark.pedantic(
        run_dynamic_study,
        args=(bench_setup,),
        kwargs=dict(epochs=8),
        rounds=1,
        iterations=1,
    )
    curves = results["curves"]
    # Under drift the adaptive strategies beat the static plan.
    assert np.mean(curves["oracle"][1:]) <= np.mean(curves["static"][1:]) + 1e-9
    assert np.mean(curves["tracked"][1:]) <= np.mean(curves["static"][1:]) + 1e-9
    emit(results_dir, "dynamic", format_dynamic_study(results))

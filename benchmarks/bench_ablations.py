"""E7 — the ablation suite (dispatch, metric, theta, misprediction,
redirection).  Writes ``results/ablations.txt``."""

import pytest

from conftest import emit
from repro.experiments.ablations import (
    format_ablations,
    run_dispatch_ablation,
    run_metric_ablation,
    run_misprediction,
    run_redirection,
    run_theta_sweep,
)


@pytest.mark.benchmark(group="figures")
def test_ablations(benchmark, bench_setup, results_dir):
    def body():
        return (
            run_dispatch_ablation(bench_setup),
            run_metric_ablation(bench_setup),
            run_theta_sweep(bench_setup, thetas=(0.3, 0.5, 0.7, 0.9)),
            run_misprediction(bench_setup),
            run_redirection(bench_setup),
        )

    dispatch, metric, theta, mispred, redirect = benchmark.pedantic(
        body, rounds=1, iterations=1
    )
    # Eq. (3) never exceeds Eq. (2); redirection never hurts.
    for row in metric:
        assert row["L_std_pct"] <= row["L_max_pct"] + 1e-9
    curves = redirect["curves"]
    assert sum(curves["backbone=7200"]) <= sum(curves["backbone=0"]) + 1e-9
    emit(
        results_dir,
        "ablations",
        format_ablations(dispatch, metric, theta, mispred, redirect),
    )

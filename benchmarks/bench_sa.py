"""E5 — the scalable-bit-rate simulated-annealing study.

Times the full SA pipeline (chains + evaluation) at paper scale and writes
``results/sa_experiment.txt``.  Also microbenchmarks the SA kernel
(cost evaluation and one proposal) since they dominate the run.
"""

import numpy as np
import pytest

from conftest import emit
from repro.annealing import ScalableBitRateProblem
from repro.experiments.sa_experiment import format_sa_report, run_sa_experiment


@pytest.mark.benchmark(group="figures")
def test_sa_experiment(benchmark, bench_setup, results_dir):
    results = benchmark.pedantic(
        run_sa_experiment,
        kwargs=dict(
            setup=bench_setup,
            num_chains=2,
            steps_per_level=150,
            max_levels=60,
            num_runs=3,
        ),
        rounds=1,
        iterations=1,
    )
    assert results["best_objective"] > results["initial_objective"]
    emit(results_dir, "sa_experiment", format_sa_report(results))


@pytest.mark.benchmark(group="sa-kernel")
class TestSAKernel:
    @pytest.fixture()
    def sa(self, bench_setup):
        problem = bench_setup.problem(0.75, 1.6, scalable=True)
        return ScalableBitRateProblem(problem)

    def test_cost(self, benchmark, sa):
        state = sa.initial_state(np.random.default_rng(0))
        value = benchmark(sa.cost, state)
        assert np.isfinite(value)

    def test_propose(self, benchmark, sa):
        state = sa.initial_state(np.random.default_rng(0))
        rng = np.random.default_rng(1)
        benchmark(sa.propose, state, rng)

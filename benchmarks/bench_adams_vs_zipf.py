"""E4 — Adams vs Zipf replication: equivalence in quality, divergence in time.

Writes ``results/adams_vs_zipf.txt``; asserts Adams hits the exact Eq. (8)
optimum at every paper design point.
"""

import pytest

from conftest import emit
from repro.experiments.adams_vs_zipf import format_report, run_quality, run_timing


@pytest.mark.benchmark(group="figures")
def test_adams_vs_zipf(benchmark, bench_setup, results_dir):
    def body():
        return run_quality(bench_setup), run_timing(
            sizes=(200, 1000, 5000), repeats=2
        )

    quality, timing = benchmark.pedantic(body, rounds=1, iterations=1)
    for row in quality:
        assert row["adams_max_w"] == pytest.approx(row["optimal_max_w"], rel=1e-9)
    emit(results_dir, "adams_vs_zipf", format_report(quality, timing))

"""Kernel benchmarks: the placement algorithms (paper scale and 25x)."""

import pytest

from repro.placement import (
    greedy_least_loaded_placement,
    round_robin_placement,
    smallest_load_first_placement,
    theorem2_holds,
)
from repro.popularity import zipf_probabilities
from repro.replication import adams_replication


def _replication(m, n, degree):
    return adams_replication(zipf_probabilities(m, 0.75), n, int(m * degree))


@pytest.mark.benchmark(group="placement-paper-scale")
class TestPaperScale:
    M, N, CAP = 200, 8, 40

    def test_slf(self, benchmark):
        replication = _replication(self.M, self.N, 1.6)
        layout = benchmark(smallest_load_first_placement, replication, self.CAP)
        assert theorem2_holds(layout, replication)

    def test_round_robin(self, benchmark):
        replication = _replication(self.M, self.N, 1.6)
        layout = benchmark(round_robin_placement, replication, self.CAP)
        assert layout.total_replicas == replication.total_replicas

    def test_greedy(self, benchmark):
        replication = _replication(self.M, self.N, 1.6)
        layout = benchmark(greedy_least_loaded_placement, replication, self.CAP)
        assert layout.total_replicas == replication.total_replicas


@pytest.mark.benchmark(group="placement-large")
class TestLarge:
    M, N, CAP = 5000, 16, 500

    def test_slf(self, benchmark):
        replication = _replication(self.M, self.N, 1.6)
        layout = benchmark(smallest_load_first_placement, replication, self.CAP)
        assert layout.total_replicas == replication.total_replicas

    def test_round_robin(self, benchmark):
        replication = _replication(self.M, self.N, 1.6)
        layout = benchmark(round_robin_placement, replication, self.CAP)
        assert layout.total_replicas == replication.total_replicas

"""Hot-path microbenchmarks: DES core and delta-cost annealing.

Times the two dominant inner loops at fixed scales and writes the results
to ``BENCH_hotpaths.json`` at the repo root, so every perf PR has a
machine-readable before/after trajectory:

* **Simulator** — one fig5-scale peak period (M=200 videos, N=8 servers,
  lambda=40/min) through the optimized :class:`VoDClusterSimulator` and the
  retained :class:`ReferenceClusterSimulator`, reporting events/sec for
  both and cross-checking bit-identical ``SimulationResult``s on plain,
  redirected, failure-injected, and full-chaos (failover + re-replication)
  configurations.
* **Vector** — the same fig5 peak period through the vectorized
  event-batch engine (:class:`VectorClusterSimulator`), reporting
  events/sec against the pinned PR-2 tuple-core baseline (gated >=2x at
  full scale on >=4-core machines) and cross-checking bit-identical
  outcomes against both lockstep loops.
* **Annealing** — `ScalableBitRateProblem` at paper scale (M=250, N=8)
  through the full-recompute and incremental engine paths, reporting
  Metropolis steps/sec for both and cross-checking incremental deltas
  against full recomputation.
* **Scale** — the fig5 workload split into 4 arrival shards and fanned
  over a 4-worker pool, reporting aggregate events/sec vs the serial
  baseline and gating the shard merge's exactness (pooled == serial ==
  one genuine unsharded block simulation).
* **Surrogate** — the analytical Erlang fixed-point layout scorer
  (`repro.analysis.surrogate`): layouts/sec on a fig5-scale batch vs
  DES-equivalent scoring (gated >=100x) plus the
  `repro.verify.surrogate_audit` accuracy/bracketing sample.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full scale
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --smoke    # CI scale
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --only scale

Exit status is non-zero iff a determinism cross-check fails; timings are
informational.  ``--output`` overrides the JSON path.  The ``*_seed``
baselines recorded in the JSON were measured at the pre-optimization
commit on the same workloads (the reference simulator shares this PR's
tuple event queue and slimmed server accounting, so it runs faster than
the true seed did).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro import ClusterSpec, VideoCollection, ZipfPopularity
from repro.annealing import ScalableBitRateProblem, SimulatedAnnealer
from repro.cluster_sim import (
    ReferenceClusterSimulator,
    VectorClusterSimulator,
    VoDClusterSimulator,
)
from repro.cluster_sim.failures import (
    FailoverPolicy,
    FailureEvent,
    FailureSchedule,
    RereplicationPolicy,
)
from repro.model.problem import ReplicationProblem
from repro.placement import smallest_load_first_placement
from repro.replication import zipf_interval_replication
from repro.workload import WorkloadGenerator

#: Throughputs measured at the seed commit (pre-optimization), same
#: workloads, same machine class; the "before" of this perf trajectory.
SEED_EVENTS_PER_SEC = 174_234.0
SEED_SA_STEPS_PER_SEC = 4_902.0

#: Optimized-simulator throughput recorded by the tuple-core PR (PR 2) on
#: this machine class — the "before" of the observability layer.  The
#: disabled-path budget gates the current plain throughput against it.
PR2_EVENTS_PER_SEC = 715_214.7


def _machine_info() -> dict:
    return {
        "platform": platform.platform(),
        "processor": platform.processor() or platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _best_wall(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall time over *repeats* calls plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


# ----------------------------------------------------------------------
# Simulator benchmark
# ----------------------------------------------------------------------
def _fig5_system():
    popularity = ZipfPopularity(200, 0.75)
    cluster = ClusterSpec.homogeneous(8, storage_gb=81.0, bandwidth_mbps=1800.0)
    videos = VideoCollection.homogeneous(200)
    replication = zipf_interval_replication(popularity.probabilities, 8, 240)
    layout = smallest_load_first_placement(replication, 30)
    return popularity, cluster, videos, layout


def bench_simulator(smoke: bool, repeats: int) -> dict:
    popularity, cluster, videos, layout = _fig5_system()
    duration = 20.0 if smoke else 90.0
    generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
    trace = generator.generate(duration, np.random.default_rng(2))

    optimized = VoDClusterSimulator(cluster, videos, layout)
    reference = ReferenceClusterSimulator(cluster, videos, layout)

    # Determinism cross-checks over distinct feature combinations; the
    # full randomized crossing lives in tests/test_simulator_equivalence.py.
    failures = FailureSchedule(
        (FailureEvent(time_min=duration / 3, server=1, down_min=duration / 6),)
    )
    scenarios = {
        "plain": dict(horizon_min=duration),
        "redirected": dict(horizon_min=duration, _backbone=500.0),
        "failures": dict(
            horizon_min=duration, failures=failures, failover_on_down=True
        ),
        "chaos": dict(
            horizon_min=duration,
            failures=failures,
            failover_on_down=True,
            failover=FailoverPolicy(backoff_base_min=duration / 100.0),
            rereplication=RereplicationPolicy(),
        ),
    }
    identical = True
    for name, kwargs in scenarios.items():
        backbone = kwargs.pop("_backbone", 0.0)
        opt = VoDClusterSimulator(cluster, videos, layout, backbone_mbps=backbone)
        ref = ReferenceClusterSimulator(
            cluster, videos, layout, backbone_mbps=backbone
        )
        if not opt.run(trace, **kwargs).same_outcome(ref.run(trace, **kwargs)):
            identical = False
            print(f"FAIL: simulator outcome diverged on scenario {name!r}")

    wall_ref, res_ref = _best_wall(
        lambda: reference.run(trace, horizon_min=duration), repeats
    )
    wall_opt, res_opt = _best_wall(
        lambda: optimized.run(trace, horizon_min=duration), repeats
    )
    ref_eps = res_ref.num_events / wall_ref
    opt_eps = res_opt.num_events / wall_opt
    return {
        "workload": {
            "num_videos": 200,
            "num_servers": 8,
            "arrival_rate_per_min": 40.0,
            "duration_min": duration,
            "num_requests": trace.num_requests,
            "num_events": res_opt.num_events,
        },
        "seed_events_per_sec": SEED_EVENTS_PER_SEC,
        "reference_events_per_sec": round(ref_eps, 1),
        "optimized_events_per_sec": round(opt_eps, 1),
        "speedup_vs_seed": round(opt_eps / SEED_EVENTS_PER_SEC, 2),
        "speedup_vs_reference": round(opt_eps / ref_eps, 2),
        "reference_wall_sec": round(wall_ref, 6),
        "optimized_wall_sec": round(wall_opt, 6),
        "bit_identical": identical,
    }


# ----------------------------------------------------------------------
# Vector-engine benchmark
# ----------------------------------------------------------------------
def bench_vector(smoke: bool, repeats: int) -> dict:
    """The vectorized event-batch engine vs the PR-2 tuple core.

    Same fig5-scale workload as the simulator block.  The base model
    (static round-robin, no backbone, no chaos) keeps the vector fast
    path fully engaged, so this measures the batched core rather than
    the delegation fallback.  The >=2x events/s budget against the
    pinned PR-2 tuple-core throughput is gated at full scale on >=4-core
    machines (matching the scale block's policy: smoke runs and starved
    CI boxes report advisory numbers only).
    """
    popularity, cluster, videos, layout = _fig5_system()
    duration = 20.0 if smoke else 90.0
    generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
    trace = generator.generate(duration, np.random.default_rng(2))

    optimized = VoDClusterSimulator(cluster, videos, layout)
    reference = ReferenceClusterSimulator(cluster, videos, layout)
    vector = VectorClusterSimulator(cluster, videos, layout)

    res_opt = optimized.run(trace, horizon_min=duration)
    res_vec = vector.run(trace, horizon_min=duration)
    identical = res_vec.same_outcome(res_opt) and res_vec.same_outcome(
        reference.run(trace, horizon_min=duration)
    )
    if not identical:
        print("FAIL: vector engine outcome diverged on the bench workload")

    wall_opt, _ = _best_wall(
        lambda: optimized.run(trace, horizon_min=duration), repeats
    )
    wall_vec, _ = _best_wall(
        lambda: vector.run(trace, horizon_min=duration), repeats
    )
    opt_eps = res_opt.num_events / wall_opt
    vec_eps = res_vec.num_events / wall_vec
    budget = 2.0
    gated = (not smoke) and (os.cpu_count() or 1) >= 4
    speedup_vs_pr2 = vec_eps / PR2_EVENTS_PER_SEC
    return {
        "workload": {
            "num_videos": 200,
            "num_servers": 8,
            "arrival_rate_per_min": 40.0,
            "duration_min": duration,
            "num_requests": trace.num_requests,
            "num_events": res_vec.num_events,
        },
        "pr2_events_per_sec": PR2_EVENTS_PER_SEC,
        "optimized_events_per_sec": round(opt_eps, 1),
        "vector_events_per_sec": round(vec_eps, 1),
        "speedup_vs_pr2": round(speedup_vs_pr2, 2),
        "speedup_vs_optimized": round(vec_eps / opt_eps, 2),
        "optimized_wall_sec": round(wall_opt, 6),
        "vector_wall_sec": round(wall_vec, 6),
        "budget_speedup": budget,
        "budget_gated": gated,
        "bit_identical": identical,
        "ok": identical and (speedup_vs_pr2 >= budget or not gated),
    }


# ----------------------------------------------------------------------
# Audit-overhead benchmark (repro.verify)
# ----------------------------------------------------------------------
def bench_audit(smoke: bool) -> dict:
    """Enabled-auditor overhead on the DES hot loop.

    Two workloads at fig5 scale: the *full-lifecycle* run (horizon past
    the last departure, so arrivals and departures both flow) and the
    *peak-period* slice (horizon = trace duration; with 90-minute videos
    no stream departs inside it, so every event is an arrival — the
    worst case for per-arrival instrumentation, reported as
    informational).  The <=10% budget is gated on the full-lifecycle
    workload.  Plain and audited runs are interleaved per iteration
    (best-of-N each) so CPU frequency drift cancels out of the ratio, the
    collector is paused during timing (``timeit``'s default) so GC pauses
    triggered by unrelated allocation history don't land on one side of
    the comparison, and each workload is measured in several independent
    passes with the minimum-overhead pass reported — the ``timeit.repeat``
    guidance: higher figures are interference from other processes, not
    properties of the code under test.
    """
    import gc

    from repro.verify import standard_auditors
    from repro.verify.audit import run_audited

    popularity, cluster, videos, layout = _fig5_system()
    duration = 20.0 if smoke else 90.0
    generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
    trace = generator.generate(duration, np.random.default_rng(2))
    simulator = VoDClusterSimulator(cluster, videos, layout)
    auditors = standard_auditors()
    video_minutes = float(videos.durations_min.max())
    reps = 30 if smoke else 100

    passes = 2 if smoke else 3

    def measure_pass(horizon: float) -> dict:
        best_plain = best_audited = float("inf")
        plain = audited = report = None
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(reps):
                start = time.perf_counter()
                plain = simulator.run(trace, horizon_min=horizon)
                best_plain = min(best_plain, time.perf_counter() - start)
                start = time.perf_counter()
                audited, report = run_audited(
                    simulator, trace, horizon_min=horizon, auditors=auditors
                )
                best_audited = min(best_audited, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
        overhead = (best_audited - best_plain) / best_plain * 100.0
        return {
            "horizon_min": horizon,
            "num_events": plain.num_events,
            "plain_events_per_sec": round(plain.num_events / best_plain, 1),
            "audited_events_per_sec": round(
                audited.num_events / best_audited, 1
            ),
            "plain_wall_sec": round(best_plain, 6),
            "audited_wall_sec": round(best_audited, 6),
            "overhead_pct": round(overhead, 2),
            "identical": plain.same_outcome(audited),
            "violations": report.num_violations,
        }

    def measure(horizon: float) -> dict:
        results = [measure_pass(horizon) for _ in range(passes)]
        best = min(results, key=lambda r: r["overhead_pct"])
        best = dict(best)
        # identical/violations must hold in EVERY pass, not just the kept one.
        best["identical"] = all(r["identical"] for r in results)
        best["violations"] = max(r["violations"] for r in results)
        best["overhead_pct_passes"] = [r["overhead_pct"] for r in results]
        return best

    full_lifecycle = measure(duration + video_minutes + 5.0)
    peak_period = measure(duration)
    budget_met = full_lifecycle["overhead_pct"] <= 10.0
    ok = (
        full_lifecycle["identical"]
        and peak_period["identical"]
        and full_lifecycle["violations"] == 0
        and peak_period["violations"] == 0
        # Timing is advisory on smoke runs: shared CI runners cannot
        # honor a 10% wall-clock budget, so only the full benchmark
        # (run on quiet hardware) gates on it.
        and (budget_met or smoke)
    )
    return {
        "auditors": [a.name for a in auditors],
        "repeats": reps,
        "passes": passes,
        "budget_overhead_pct": 10.0,
        "budget_met": budget_met,
        "full_lifecycle": full_lifecycle,
        "peak_period": peak_period,
        "disabled_overhead": "zero by construction (one dispatch per run)",
        "ok": ok,
    }


# ----------------------------------------------------------------------
# Observability-overhead benchmark (repro.observe)
# ----------------------------------------------------------------------
def bench_observe(smoke: bool) -> dict:
    """Observer overhead on the DES hot loop (repro.observe).

    Two budgets, both on the full-lifecycle fig5 workload:

    * **disabled** (``observer=None``) — the cost of the instrumentation
      guards alone, gated at <=2% against the tuple-core PR's recorded
      throughput (:data:`PR2_EVENTS_PER_SEC`);
    * **metrics on** (1-minute sampling, sampled event traces) — gated at
      <=10% against an interleaved plain run of the same build, the same
      measurement discipline as :func:`bench_audit` (gc paused, best-of-N
      per pass, minimum-overhead pass kept, bit-identity required in
      every pass).  The observer's numpy fold is deferred to first read,
      so this measures the recording cost on the critical path; the fold
      itself is reported separately (``fold_wall_sec``, informational).

    Timing budgets gate only on non-smoke runs (quiet hardware).
    """
    import gc

    from repro.observe import Observer, ObserverConfig

    popularity, cluster, videos, layout = _fig5_system()
    duration = 20.0 if smoke else 90.0
    generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
    trace = generator.generate(duration, np.random.default_rng(2))
    simulator = VoDClusterSimulator(cluster, videos, layout)
    video_minutes = float(videos.durations_min.max())
    horizon = duration + video_minutes + 5.0
    reps = 30 if smoke else 100
    passes = 2 if smoke else 3
    config = ObserverConfig(
        sample_interval_min=1.0, trace_events=True, trace_event_every=100
    )

    def measure_pass() -> dict:
        best_plain = best_observed = float("inf")
        plain = observed = None
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(reps):
                start = time.perf_counter()
                plain = simulator.run(trace, horizon_min=horizon)
                best_plain = min(best_plain, time.perf_counter() - start)
                observer = Observer(config)
                start = time.perf_counter()
                observed = simulator.run(
                    trace, horizon_min=horizon, observer=observer
                )
                best_observed = min(
                    best_observed, time.perf_counter() - start
                )
        finally:
            if gc_was_enabled:
                gc.enable()
        overhead = (best_observed - best_plain) / best_plain * 100.0
        return {
            "num_events": plain.num_events,
            "plain_events_per_sec": round(plain.num_events / best_plain, 1),
            "observed_events_per_sec": round(
                observed.num_events / best_observed, 1
            ),
            "plain_wall_sec": round(best_plain, 6),
            "observed_wall_sec": round(best_observed, 6),
            "overhead_pct": round(overhead, 2),
            "identical": plain.same_outcome(observed),
        }

    results = [measure_pass() for _ in range(passes)]
    best = dict(min(results, key=lambda r: r["overhead_pct"]))
    best["identical"] = all(r["identical"] for r in results)
    best["overhead_pct_passes"] = [r["overhead_pct"] for r in results]

    # Informational: the deferred fold (numpy aggregation of one run's
    # parked samples into the registry) runs on first read, off the
    # simulator's critical path — report what one flush costs.
    observer = Observer(config)
    simulator.run(trace, horizon_min=horizon, observer=observer)
    start = time.perf_counter()
    observer.registry  # first read flushes the parked run
    best["fold_wall_sec"] = round(time.perf_counter() - start, 6)

    plain_eps = best["plain_events_per_sec"]
    disabled_overhead = (PR2_EVENTS_PER_SEC - plain_eps) / PR2_EVENTS_PER_SEC * 100.0
    disabled_budget_met = disabled_overhead <= 2.0
    metrics_budget_met = best["overhead_pct"] <= 10.0
    ok = best["identical"] and (
        smoke or (disabled_budget_met and metrics_budget_met)
    )
    return {
        "config": {
            "sample_interval_min": config.sample_interval_min,
            "trace_events": config.trace_events,
            "trace_event_every": config.trace_event_every,
        },
        "horizon_min": horizon,
        "repeats": reps,
        "passes": passes,
        "pr2_events_per_sec": PR2_EVENTS_PER_SEC,
        "disabled_budget_pct": 2.0,
        "disabled_overhead_pct": round(disabled_overhead, 2),
        "disabled_budget_met": disabled_budget_met,
        "metrics_budget_pct": 10.0,
        "metrics_budget_met": metrics_budget_met,
        "metrics_on": best,
        "ok": ok,
    }


# ----------------------------------------------------------------------
# Chaos-overhead benchmark (repro.cluster_sim.failures)
# ----------------------------------------------------------------------
def bench_chaos(smoke: bool) -> dict:
    """Failure-free cost of the chaos & recovery machinery.

    Runs the full-lifecycle fig5 workload twice per iteration: plain, and
    with the entire chaos stack attached but inert (an empty
    :class:`FailureSchedule` plus failover and re-replication policies).
    The attached run must stay **bit-identical** to the plain run — the
    failure-free path is required to be the same hot path, gated on every
    run including smoke — and within a <=2% wall-time budget, gated on
    non-smoke runs only (same measurement discipline as
    :func:`bench_audit`: gc paused, interleaved best-of-N, minimum
    overhead pass kept).
    """
    import gc

    popularity, cluster, videos, layout = _fig5_system()
    duration = 20.0 if smoke else 90.0
    generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
    trace = generator.generate(duration, np.random.default_rng(2))
    simulator = VoDClusterSimulator(cluster, videos, layout)
    video_minutes = float(videos.durations_min.max())
    horizon = duration + video_minutes + 5.0
    reps = 30 if smoke else 100
    passes = 2 if smoke else 3
    chaos_kwargs = dict(
        failures=FailureSchedule.none(),
        failover_on_down=True,
        failover=FailoverPolicy(),
        rereplication=RereplicationPolicy(),
    )

    def measure_pass() -> dict:
        best_plain = best_chaos = float("inf")
        plain = attached = None
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(reps):
                start = time.perf_counter()
                plain = simulator.run(trace, horizon_min=horizon)
                best_plain = min(best_plain, time.perf_counter() - start)
                start = time.perf_counter()
                attached = simulator.run(
                    trace, horizon_min=horizon, **chaos_kwargs
                )
                best_chaos = min(best_chaos, time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
        overhead = (best_chaos - best_plain) / best_plain * 100.0
        return {
            "num_events": plain.num_events,
            "plain_events_per_sec": round(plain.num_events / best_plain, 1),
            "chaos_events_per_sec": round(
                attached.num_events / best_chaos, 1
            ),
            "plain_wall_sec": round(best_plain, 6),
            "chaos_wall_sec": round(best_chaos, 6),
            "overhead_pct": round(overhead, 2),
            "identical": plain.same_outcome(attached)
            and attached.num_failures == 0
            and attached.num_retries == 0,
        }

    results = [measure_pass() for _ in range(passes)]
    best = dict(min(results, key=lambda r: r["overhead_pct"]))
    best["identical"] = all(r["identical"] for r in results)
    best["overhead_pct_passes"] = [r["overhead_pct"] for r in results]

    budget_met = best["overhead_pct"] <= 2.0
    ok = best["identical"] and (budget_met or smoke)
    return {
        "horizon_min": horizon,
        "repeats": reps,
        "passes": passes,
        "budget_overhead_pct": 2.0,
        "budget_met": budget_met,
        "failure_free": best,
        "ok": ok,
    }


# ----------------------------------------------------------------------
# Sharded scale-out benchmark (repro.cluster_sim.sharding)
# ----------------------------------------------------------------------
def bench_scale(smoke: bool, repeats: int) -> dict:
    """K-way sharded scale-out: throughput and merge exactness.

    Splits the fig5 workload into 4 full-rate arrival shards (weak
    scaling: 4 pods, 4x the events) and times the shard set twice: all
    shards serially in-process, and fanned over a 4-worker
    :class:`ParallelRunner` via :func:`run_sharded`.  Reported speedup is
    aggregate events/s over the serial baseline.

    Correctness is gated on every run (including smoke):

    * the pooled merge is bitwise the serial merge;
    * the merge is permutation-invariant (``shard_indices``) and a K=1
      merge is a no-op;
    * the merged result is field-identical to one genuine unsharded
      simulation of the 4-pod block system
      (:func:`repro.verify.audit_shard_merge`).

    The >=3x speedup budget gates only on non-smoke runs on machines with
    at least 4 CPUs — a shared 1-2 core runner cannot express multi-core
    scaling, and recording an honest miss there would gate on the
    machine, not the code.
    """
    from repro.cluster_sim import merge_results, run_sharded, shard_traces
    from repro.runtime import ParallelRunner
    from repro.verify import audit_shard_merge, compare_merged

    popularity, cluster, videos, layout = _fig5_system()
    duration = 20.0 if smoke else 90.0
    num_shards = workers = 4
    generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
    simulator = VoDClusterSimulator(cluster, videos, layout)
    traces = shard_traces(generator, duration, seed=2, num_shards=num_shards)

    def run_serial():
        return [simulator.run(t, horizon_min=duration) for t in traces]

    wall_serial, serial_results = _best_wall(run_serial, repeats)
    serial_merged = merge_results(serial_results)

    with ParallelRunner(jobs=workers) as runner:
        run_pooled = lambda: run_sharded(
            simulator, traces, runner=runner, horizon_min=duration
        )
        run_pooled()  # warm the worker pool before timing
        wall_pooled, (pooled_merged, _) = _best_wall(run_pooled, repeats)

    total_events = sum(r.num_events for r in serial_results)
    serial_eps = total_events / wall_serial
    pooled_eps = total_events / wall_pooled
    speedup = pooled_eps / serial_eps

    pooled_identical = compare_merged(serial_merged, pooled_merged) == []
    if not pooled_identical:
        print("FAIL: pooled shard merge diverged from the serial merge")
    permuted = merge_results(
        list(reversed(serial_results)),
        shard_indices=list(reversed(range(num_shards))),
    )
    permutation_invariant = compare_merged(serial_merged, permuted) == []
    if not permutation_invariant:
        print("FAIL: shard merge is not permutation-invariant")
    k1_noop = merge_results([serial_results[0]]) is serial_results[0]
    if not k1_noop:
        print("FAIL: K=1 merge is not a bitwise no-op")
    block_report = audit_shard_merge(
        simulator, traces, serial_merged, horizon_min=duration
    )
    if not block_report.ok:
        for violation in block_report.violations:
            print(f"FAIL: shard merge vs unsharded block: {violation}")

    identical = (
        pooled_identical
        and permutation_invariant
        and k1_noop
        and block_report.ok
    )
    cpu_count = os.cpu_count() or 1
    budget_met = speedup >= 3.0
    ok = identical and (budget_met or smoke or cpu_count < workers)
    return {
        "num_shards": num_shards,
        "workers": workers,
        "cpu_count": cpu_count,
        "duration_min": duration,
        "num_events_total": total_events,
        "serial_events_per_sec": round(serial_eps, 1),
        "parallel_events_per_sec": round(pooled_eps, 1),
        "speedup": round(speedup, 2),
        "serial_wall_sec": round(wall_serial, 6),
        "parallel_wall_sec": round(wall_pooled, 6),
        "budget_speedup": 3.0,
        "budget_met": budget_met,
        "budget_gated": not smoke and cpu_count >= workers,
        "merged_bit_identical": pooled_identical,
        "permutation_invariant": permutation_invariant,
        "k1_merge_noop": k1_noop,
        "unsharded_block_identical": block_report.ok,
        "ok": ok,
    }


# ----------------------------------------------------------------------
# Erlang-surrogate benchmark (repro.analysis.surrogate)
# ----------------------------------------------------------------------
def bench_surrogate(smoke: bool, repeats: int) -> dict:
    """Analytical layout scoring: throughput vs the DES, plus accuracy.

    **Speed** — scores a batch of random feasible fig5-scale layouts with
    :func:`repro.analysis.surrogate.evaluate_layouts` (least-loaded
    overflow model, the expensive fixed-point path) and compares
    layouts/sec against DES-equivalent scoring: the pipeline's standard
    evaluation protocol of 20 independent simulated runs averaged per
    layout (:class:`repro.experiments.config.PaperSetup` ``num_runs``) —
    what ``solve()`` pays to attach a rejection rate to one layout.  The
    >=100x budget gates on non-smoke runs; the ROADMAP's "analytical
    fast path" contract.

    **Accuracy** — runs the :mod:`repro.verify.surrogate_audit` sample
    (the CI-pinned seed): max absolute rejection-rate error within the
    audit tolerance, pooled/partitioned bracketing and fixed-point
    convergence on every audited configuration.  Gated on every run —
    the audit is deterministic, so smoke runs must pass it too.
    """
    from repro.analysis.surrogate import SurrogateWorkload, evaluate_layouts
    from repro.placement import random_feasible_placement
    from repro.verify.surrogate_audit import (
        DEFAULT_TOLERANCE,
        audit_surrogate,
    )

    popularity, cluster, videos, layout = _fig5_system()
    duration = 20.0 if smoke else 90.0
    num_layouts = 16 if smoke else 64
    replication = zipf_interval_replication(popularity.probabilities, 8, 240)
    rng = np.random.default_rng(3)
    layouts = [layout] + [
        random_feasible_placement(replication, 30, rng)
        for _ in range(num_layouts - 1)
    ]
    workload = SurrogateWorkload(
        popularity=popularity.probabilities,
        arrival_rate_per_min=40.0,
        holding_time_min=float(videos.durations_min[0]),
    )

    wall_batch, batch = _best_wall(
        lambda: evaluate_layouts(
            layouts, workload, cluster, dispatcher="least_loaded"
        ),
        repeats,
    )
    surrogate_lps = num_layouts / wall_batch

    # DES-equivalent scoring: the pipeline's evaluation protocol — 20
    # independent runs averaged per layout (PaperSetup.num_runs).
    des_runs = 20
    generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
    traces = [
        generator.generate(duration, np.random.default_rng(child))
        for child in np.random.SeedSequence(2).spawn(des_runs)
    ]
    simulator = VoDClusterSimulator(cluster, videos, layout)
    wall_des, _ = _best_wall(
        lambda: [
            simulator.run(t, horizon_min=duration).rejection_rate
            for t in traces
        ],
        repeats,
    )
    des_lps = 1.0 / wall_des
    speedup = surrogate_lps / des_lps

    audit = audit_surrogate(
        num_cases=3 if smoke else 6, num_runs=2 if smoke else 3
    )

    budget_met = speedup >= 100.0
    ok = audit.ok and batch.diagnostics.converged and (budget_met or smoke)
    return {
        "num_layouts": num_layouts,
        "dispatcher": "least_loaded",
        "fixed_point_iterations": batch.diagnostics.iterations,
        "surrogate_layouts_per_sec": round(surrogate_lps, 1),
        "des_runs_per_layout": des_runs,
        "des_layouts_per_sec": round(des_lps, 4),
        "speedup_vs_des": round(speedup, 1),
        "batch_wall_sec": round(wall_batch, 6),
        "des_wall_sec_per_layout": round(wall_des, 6),
        "budget_speedup": 100.0,
        "budget_met": budget_met,
        "audit_configs": len(audit.results),
        "audit_tolerance": DEFAULT_TOLERANCE,
        "audit_max_abs_error": round(audit.max_abs_error, 6),
        "audit_bracketed": audit.all_bracketed,
        "audit_converged": audit.all_converged,
        "audit_ok": audit.ok,
        "ok": ok,
    }


# ----------------------------------------------------------------------
# Annealing benchmark
# ----------------------------------------------------------------------
def _paper_scale_problem() -> ScalableBitRateProblem:
    popularity = ZipfPopularity(250, 0.75)
    cluster = ClusterSpec.homogeneous(8, storage_gb=120.0, bandwidth_mbps=1800.0)
    videos = VideoCollection.homogeneous(250)
    problem = ReplicationProblem(
        cluster,
        videos,
        popularity,
        arrival_rate_per_min=40.0,
        peak_minutes=90.0,
        allowed_bit_rates_mbps=(1.5, 3.0, 4.0, 6.0),
    )
    return ScalableBitRateProblem(problem)


def _delta_crosscheck(sa: ScalableBitRateProblem, moves: int) -> float:
    """Max |incremental delta - full recompute delta| over random moves."""
    state = sa.initial_state(np.random.default_rng(0))
    context = sa.make_incremental(state)
    full_state = state.copy()
    worst = 0.0
    for i in range(moves):
        seed = 10_000 + i
        before = sa.cost(full_state)
        neighbor = sa.propose(full_state, np.random.default_rng(seed))
        delta = context.propose(np.random.default_rng(seed))
        if neighbor is None:
            assert delta is None
            continue
        worst = max(worst, abs(delta - (sa.cost(neighbor) - before)))
        if i % 2 == 0:
            full_state = neighbor
            context.commit()
        else:
            context.rollback()
        if not np.array_equal(context.export_state(), full_state):
            return float("inf")  # rollback/commit broke bitwise equality
    return worst


def bench_annealing(smoke: bool, repeats: int) -> dict:
    sa = _paper_scale_problem()
    annealer = SimulatedAnnealer(
        steps_per_level=200,
        max_levels=10 if smoke else 60,
        patience_levels=15,
    )
    # Best-of-N on throughput: identical seeds make every repeat the same
    # trajectory, so the fastest run is the least-noise measurement.
    res_full = res_inc = None
    for _ in range(repeats):
        full = annealer.run(sa, np.random.default_rng(42), use_incremental=False)
        inc = annealer.run(sa, np.random.default_rng(42))
        if res_full is None or full.steps_per_sec > res_full.steps_per_sec:
            res_full = full
        if res_inc is None or inc.steps_per_sec > res_inc.steps_per_sec:
            res_inc = inc
    max_error = _delta_crosscheck(sa, moves=200 if smoke else 1000)
    return {
        "scale": {"num_videos": 250, "num_servers": 8},
        "seed_steps_per_sec": SEED_SA_STEPS_PER_SEC,
        "full_steps_per_sec": round(res_full.steps_per_sec, 1),
        "incremental_steps_per_sec": round(res_inc.steps_per_sec, 1),
        "speedup_vs_seed": round(res_inc.steps_per_sec / SEED_SA_STEPS_PER_SEC, 2),
        "speedup_vs_full": round(
            res_inc.steps_per_sec / res_full.steps_per_sec, 2
        ),
        "full_wall_sec": round(res_full.wall_time_sec, 6),
        "incremental_wall_sec": round(res_inc.wall_time_sec, 6),
        "full_best_cost": res_full.best_cost,
        "incremental_best_cost": res_inc.best_cost,
        "max_delta_error": max_error,
        "delta_crosscheck_ok": max_error <= 1e-9,
    }


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI scale: short trace, few annealing levels",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json",
        help="output JSON path (default: repo root)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=(
            "simulator",
            "vector",
            "audit",
            "observe",
            "chaos",
            "scale",
            "surrogate",
            "annealing",
        ),
        help=(
            "run only the named block(s) and write a partial payload; "
            "repeatable (default: all blocks)"
        ),
    )
    args = parser.parse_args(argv)
    repeats = max(args.repeats, 1)
    blocks = (
        "simulator",
        "vector",
        "audit",
        "observe",
        "chaos",
        "scale",
        "surrogate",
        "annealing",
    )
    selected = tuple(args.only) if args.only else blocks

    payload = {
        "schema": 7,
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": args.smoke,
        "machine": _machine_info(),
    }
    ok = True

    if "simulator" in selected:
        simulator = payload["simulator"] = bench_simulator(args.smoke, repeats)
        print(
            f"simulator: {simulator['optimized_events_per_sec']:,.0f} events/s "
            f"({simulator['speedup_vs_seed']}x vs seed, "
            f"{simulator['speedup_vs_reference']}x vs reference), "
            f"bit_identical={simulator['bit_identical']}"
        )
        ok = ok and simulator["bit_identical"]
    if "vector" in selected:
        vector = payload["vector"] = bench_vector(args.smoke, repeats)
        print(
            f"vector: {vector['vector_events_per_sec']:,.0f} events/s "
            f"({vector['speedup_vs_pr2']}x vs PR-2 tuple core, "
            f"{vector['speedup_vs_optimized']}x vs optimized, "
            f"budget >={vector['budget_speedup']:.0f}x"
            f"{' gated' if vector['budget_gated'] else ' advisory'}), "
            f"bit_identical={vector['bit_identical']}, ok={vector['ok']}"
        )
        ok = ok and vector["ok"]
    if "audit" in selected:
        audit = payload["audit"] = bench_audit(args.smoke)
        print(
            f"audit: +{audit['full_lifecycle']['overhead_pct']}% enabled overhead "
            f"(full lifecycle; peak period "
            f"+{audit['peak_period']['overhead_pct']}%), budget "
            f"<={audit['budget_overhead_pct']}%, ok={audit['ok']}"
        )
        ok = ok and audit["ok"]
    if "observe" in selected:
        observe = payload["observe"] = bench_observe(args.smoke)
        print(
            f"observe: disabled {observe['disabled_overhead_pct']:+}% vs PR2 "
            f"(budget <={observe['disabled_budget_pct']}%), metrics on "
            f"+{observe['metrics_on']['overhead_pct']}% "
            f"(budget <={observe['metrics_budget_pct']}%), ok={observe['ok']}"
        )
        ok = ok and observe["ok"]
    if "chaos" in selected:
        chaos = payload["chaos"] = bench_chaos(args.smoke)
        print(
            f"chaos: +{chaos['failure_free']['overhead_pct']}% failure-free "
            f"overhead (budget <={chaos['budget_overhead_pct']}%), "
            f"bit_identical={chaos['failure_free']['identical']}, "
            f"ok={chaos['ok']}"
        )
        ok = ok and chaos["ok"]
    if "scale" in selected:
        scale = payload["scale"] = bench_scale(args.smoke, repeats)
        print(
            f"scale: {scale['parallel_events_per_sec']:,.0f} aggregate events/s "
            f"on {scale['workers']} workers ({scale['speedup']}x serial, "
            f"budget >={scale['budget_speedup']}x"
            f"{' gated' if scale['budget_gated'] else ' advisory'}), "
            f"merge identical={scale['merged_bit_identical']}, "
            f"block identical={scale['unsharded_block_identical']}, "
            f"ok={scale['ok']}"
        )
        ok = ok and scale["ok"]
    if "surrogate" in selected:
        surrogate = payload["surrogate"] = bench_surrogate(args.smoke, repeats)
        print(
            f"surrogate: {surrogate['surrogate_layouts_per_sec']:,.0f} "
            f"layouts/s ({surrogate['speedup_vs_des']}x vs DES-equivalent, "
            f"budget >={surrogate['budget_speedup']:.0f}x), audit max err "
            f"{surrogate['audit_max_abs_error']} "
            f"(tol {surrogate['audit_tolerance']}), "
            f"bracketed={surrogate['audit_bracketed']}, ok={surrogate['ok']}"
        )
        ok = ok and surrogate["ok"]
    if "annealing" in selected:
        annealing = payload["annealing"] = bench_annealing(args.smoke, repeats)
        print(
            f"annealing: {annealing['incremental_steps_per_sec']:,.0f} steps/s "
            f"({annealing['speedup_vs_seed']}x vs seed, "
            f"{annealing['speedup_vs_full']}x vs full), "
            f"delta_crosscheck_ok={annealing['delta_crosscheck_ok']}"
        )
        ok = ok and annealing["delta_crosscheck_ok"]

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

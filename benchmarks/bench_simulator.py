"""Kernel benchmarks: workload generation and one peak-period simulation."""

import numpy as np
import pytest

from repro import ClusterSpec, VideoCollection, ZipfPopularity
from repro.cluster_sim import LeastLoadedDispatcher, VoDClusterSimulator
from repro.placement import smallest_load_first_placement
from repro.replication import zipf_interval_replication
from repro.workload import WorkloadGenerator


@pytest.fixture(scope="module")
def paper_system():
    popularity = ZipfPopularity(200, 0.75)
    cluster = ClusterSpec.homogeneous(8, storage_gb=81.0, bandwidth_mbps=1800.0)
    videos = VideoCollection.homogeneous(200)
    replication = zipf_interval_replication(popularity.probabilities, 8, 240)
    layout = smallest_load_first_placement(replication, 30)
    return popularity, cluster, videos, layout


@pytest.mark.benchmark(group="simulator")
class TestSimulator:
    def test_workload_generation(self, benchmark, paper_system):
        popularity, *_ = paper_system
        generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
        rng = np.random.default_rng(1)
        trace = benchmark(generator.generate, 90.0, rng)
        assert trace.num_requests > 3000

    def test_peak_period_at_saturation(self, benchmark, paper_system):
        popularity, cluster, videos, layout = paper_system
        simulator = VoDClusterSimulator(cluster, videos, layout)
        generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
        trace = generator.generate(90.0, np.random.default_rng(2))
        result = benchmark(simulator.run, trace, horizon_min=90.0)
        assert result.num_requests == trace.num_requests

    def test_peak_period_overload(self, benchmark, paper_system):
        popularity, cluster, videos, layout = paper_system
        simulator = VoDClusterSimulator(cluster, videos, layout)
        generator = WorkloadGenerator.poisson_zipf(popularity, 60.0)
        trace = generator.generate(90.0, np.random.default_rng(3))
        result = benchmark(simulator.run, trace, horizon_min=90.0)
        assert result.num_rejected > 0

    def test_peak_period_least_loaded_dispatch(self, benchmark, paper_system):
        popularity, cluster, videos, layout = paper_system
        simulator = VoDClusterSimulator(
            cluster, videos, layout, dispatcher_factory=LeastLoadedDispatcher
        )
        generator = WorkloadGenerator.poisson_zipf(popularity, 40.0)
        trace = generator.generate(90.0, np.random.default_rng(4))
        result = benchmark(simulator.run, trace, horizon_min=90.0)
        assert result.num_requests == trace.num_requests

"""Shared fixtures for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` both times the kernels *and*
regenerates every paper figure: each ``bench_fig*`` writes its
paper-comparable series to ``results/<name>.txt`` (repo root) and prints it
so the run doubles as the reproduction harness.

Every simulation in the session runs through one
:class:`repro.runtime.ParallelRunner`:

* ``REPRO_JOBS=N`` sets the worker-process count (default 1 — serial — so
  kernel timings stay comparable run to run);
* ``REPRO_CACHE=1`` enables the on-disk result cache (default off: a
  benchmark that reads cached results measures nothing).

The engine's aggregate run report is printed at the end of the session.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import PaperSetup
from repro.runtime import ParallelRunner, ResultCache, use_runner


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the figure benchmarks write their series into."""
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def bench_setup() -> PaperSetup:
    """Paper setup with a reduced run count (benchmarks re-run the body)."""
    return PaperSetup().quick(num_runs=3)


@pytest.fixture(scope="session", autouse=True)
def bench_runner():
    """Session-wide experiment engine (see module docstring for env knobs)."""
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache = ResultCache() if os.environ.get("REPRO_CACHE") == "1" else None
    with ParallelRunner(jobs, cache=cache) as runner, use_runner(runner):
        yield runner
    print(f"\n[benchmarks] {runner.report.format()}")


def emit(results_dir: Path, name: str, report: str) -> None:
    """Write and echo one experiment report."""
    (results_dir / f"{name}.txt").write_text(report + "\n")
    print(f"\n{report}\n[written to results/{name}.txt]")

"""Shared fixtures for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` both times the kernels *and*
regenerates every paper figure: each ``bench_fig*`` writes its
paper-comparable series to ``results/<name>.txt`` (repo root) and prints it
so the run doubles as the reproduction harness.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import PaperSetup


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the figure benchmarks write their series into."""
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def bench_setup() -> PaperSetup:
    """Paper setup with a reduced run count (benchmarks re-run the body)."""
    return PaperSetup().quick(num_runs=3)


def emit(results_dir: Path, name: str, report: str) -> None:
    """Write and echo one experiment report."""
    (results_dir / f"{name}.txt").write_text(report + "\n")
    print(f"\n{report}\n[written to results/{name}.txt]")

"""E1 — regenerate the paper's Figure 4 (rejection vs replication degree).

The benchmark times one full Figure 4 sweep (4 subplots x 6 degrees x 8
arrival rates, reduced to 3 runs/point) and writes the paper-comparable
series to ``results/fig4.txt``.
"""

import pytest

from conftest import emit
from repro.experiments.fig4 import format_fig4, run_fig4


@pytest.mark.benchmark(group="figures")
def test_fig4(benchmark, bench_setup, results_dir):
    results = benchmark.pedantic(
        run_fig4, args=(bench_setup,), rounds=1, iterations=1
    )
    # Headline claim: rejection is non-increasing in the replication degree
    # at the saturation arrival rate (subplot a).
    curves = results["subplots"]["a"]["curves"]
    rates = results["arrival_rates"]
    sat_index = rates.index(40)
    at_saturation = [curves[d][sat_index] for d in sorted(curves)]
    assert at_saturation[-1] <= at_saturation[0]
    emit(results_dir, "fig4", format_fig4(results))

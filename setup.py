"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so the package can be
installed in environments without the ``wheel`` package (no PEP 660 editable
builds), via ``pip install -e . --no-build-isolation`` falling back to the
legacy ``setup.py develop`` path, or ``python setup.py develop`` directly.
"""

from setuptools import setup

setup()
